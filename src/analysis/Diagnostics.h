//===- analysis/Diagnostics.h - Static-analysis diagnostics -----*- C++ -*-===//
///
/// \file
/// The diagnostics engine shared by the static-analysis passes
/// (ProgramLint, FootprintCheck, BytecodeValidator): structured
/// diagnostics with a stable code, a severity, a location inside the
/// program or compiled artifact, and an optional fix hint. Unlike
/// support/Error.h (which aborts on programmer errors), diagnostics are
/// *collected* so a driver can render all of them -- as human-readable
/// text or as machine-readable JSON -- and decide the exit status itself
/// (`kfc --analyze [--Werror]`).
///
/// Diagnostic codes are stable identifiers of the form KF-<pass><number>:
///   KF-P##  program/IR lint        (analysis/ProgramLint.h)
///   KF-F##  footprint/halo checks  (analysis/FootprintCheck.h)
///   KF-B##  bytecode validation    (analysis/BytecodeValidator.h)
///   KF-V##  interval interpretation (analysis/IntervalAnalysis.h)
/// docs/ANALYSIS.md is the code registry; tests assert exact codes.
///
//===----------------------------------------------------------------------===//

#ifndef KF_ANALYSIS_DIAGNOSTICS_H
#define KF_ANALYSIS_DIAGNOSTICS_H

#include <cstdint>
#include <string>
#include <vector>

namespace kf {

/// Severity of one diagnostic. Errors make analysis fail; warnings fail
/// only under -Werror; notes never affect the outcome.
enum class DiagSeverity : uint8_t { Note, Warning, Error };

/// Printable severity name ("note", "warning", "error").
const char *diagSeverityName(DiagSeverity Severity);

/// Where a diagnostic points: the analyzed unit (program or fused-kernel
/// name), and optionally a kernel/stage and an instruction index inside a
/// compiled stage. Unset fields stay empty / negative.
struct DiagLocation {
  std::string Unit;   ///< Program or fused-launch name.
  std::string Kernel; ///< Kernel (or stage kernel) name, if any.
  int Stage = -1;     ///< Stage index inside a staged program.
  int Inst = -1;      ///< Instruction index inside a stage.

  /// Renders "unit[:kernel][:stage N][:inst M]" (empty when unset).
  std::string str() const;
};

/// One collected diagnostic.
struct Diagnostic {
  DiagSeverity Severity = DiagSeverity::Error;
  std::string Code;    ///< Stable identifier, e.g. "KF-P01".
  std::string Message; ///< Human-readable description.
  DiagLocation Loc;
  std::string FixHint; ///< Optional actionable suggestion.
};

/// Collects diagnostics across passes and renders them. Not thread-safe;
/// one engine per analysis run.
class DiagnosticEngine {
public:
  /// Appends a fully-formed diagnostic.
  void report(Diagnostic Diag);

  /// Convenience constructors for the three severities.
  void error(std::string Code, std::string Message, DiagLocation Loc = {},
             std::string FixHint = {});
  void warning(std::string Code, std::string Message, DiagLocation Loc = {},
               std::string FixHint = {});
  void note(std::string Code, std::string Message, DiagLocation Loc = {},
            std::string FixHint = {});

  const std::vector<Diagnostic> &diagnostics() const { return Diags; }
  unsigned errorCount() const { return Errors; }
  unsigned warningCount() const { return Warnings; }
  bool empty() const { return Diags.empty(); }

  /// True when analysis must fail: any error, or any warning under
  /// \p Werror.
  bool failed(bool Werror = false) const {
    return Errors != 0 || (Werror && Warnings != 0);
  }

  /// True when some diagnostic carries \p Code (exact match).
  bool hasCode(const std::string &Code) const;

  /// One line per diagnostic: "severity: CODE: location: message" plus an
  /// indented fix hint when present.
  std::string renderText() const;

  /// Machine-readable JSON object: {"diagnostics": [...], "errors": N,
  /// "warnings": N}. Each entry carries severity, code, message, the
  /// location fields, and the fix hint. See docs/ANALYSIS.md for the
  /// schema.
  std::string renderJson() const;

private:
  std::vector<Diagnostic> Diags;
  unsigned Errors = 0;
  unsigned Warnings = 0;
};

} // namespace kf

#endif // KF_ANALYSIS_DIAGNOSTICS_H
