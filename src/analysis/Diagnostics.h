//===- analysis/Diagnostics.h - Static-analysis diagnostics -----*- C++ -*-===//
///
/// \file
/// The diagnostics engine shared by the static-analysis passes
/// (ProgramLint, FootprintCheck, BytecodeValidator): structured
/// diagnostics with a stable code, a severity, a location inside the
/// program or compiled artifact, and an optional fix hint. Unlike
/// support/Error.h (which aborts on programmer errors), diagnostics are
/// *collected* so a driver can render all of them -- as human-readable
/// text or as machine-readable JSON -- and decide the exit status itself
/// (`kfc --analyze [--Werror]`).
///
/// Diagnostic codes are stable identifiers of the form KF-<pass><number>:
///   KF-P##  program/IR lint        (analysis/ProgramLint.h)
///   KF-F##  footprint/halo checks  (analysis/FootprintCheck.h)
///   KF-B##  bytecode validation    (analysis/BytecodeValidator.h)
///   KF-V##  interval interpretation (analysis/IntervalAnalysis.h)
/// docs/ANALYSIS.md is the code registry; tests assert exact codes.
///
//===----------------------------------------------------------------------===//

#ifndef KF_ANALYSIS_DIAGNOSTICS_H
#define KF_ANALYSIS_DIAGNOSTICS_H

#include <cstdint>
#include <string>
#include <vector>

namespace kf {

/// Severity of one diagnostic. Errors make analysis fail; warnings fail
/// only under -Werror; notes never affect the outcome.
enum class DiagSeverity : uint8_t { Note, Warning, Error };

/// Printable severity name ("note", "warning", "error").
const char *diagSeverityName(DiagSeverity Severity);

/// One entry of the diagnostic-code registry.
struct DiagCodeInfo {
  const char *Code;
  DiagSeverity Severity; ///< Severity the code is emitted with.
};

/// The registry of every stable diagnostic code the analyses emit, with
/// the severity each is reported at. This is the single source of truth
/// that keeps docs/ANALYSIS.md honest: tools/check_doc_links.py parses
/// this table (keep one `{"KF-...", ...}` entry per line) and
/// cross-checks it against every KF-* code the docs mention, and
/// tests/test_analysis_json.cpp asserts it matches the emitting call
/// sites. Frontend-originated problems (the lazy recorder and script
/// parser, frontend/Lazy.h) reuse the KF-P codes of the matching lint
/// rule rather than minting a parallel namespace.
inline constexpr DiagCodeInfo DiagCodeRegistry[] = {
    // Program/IR lint (analysis/ProgramLint.h).
    {"KF-P00", DiagSeverity::Error},   // frontend parse/record failure
    {"KF-P01", DiagSeverity::Error},   // dependence cycle
    {"KF-P02", DiagSeverity::Error},   // image reference out of range
    {"KF-P03", DiagSeverity::Error},   // image produced more than once
    {"KF-P04", DiagSeverity::Error},   // malformed mask
    {"KF-P05", DiagSeverity::Error},   // structurally invalid kernel body
    {"KF-P06", DiagSeverity::Error},   // shape inconsistency / self-read
    {"KF-P07", DiagSeverity::Error},   // channel out of range
    {"KF-P08", DiagSeverity::Error},   // operator kind contradicts body
    {"KF-P09", DiagSeverity::Warning}, // dead kernel
    {"KF-P10", DiagSeverity::Warning}, // unused image
    {"KF-P11", DiagSeverity::Warning}, // border-mode conflict
    {"KF-P12", DiagSeverity::Error},   // invalid granularity
    // Footprint/halo checks (analysis/FootprintCheck.h).
    {"KF-F01", DiagSeverity::Error},
    {"KF-F02", DiagSeverity::Error},
    {"KF-F03", DiagSeverity::Error},
    {"KF-F04", DiagSeverity::Error},
    {"KF-F05", DiagSeverity::Error},
    {"KF-F06", DiagSeverity::Error},
    // Bytecode validation (analysis/BytecodeValidator.h).
    {"KF-B01", DiagSeverity::Error},
    {"KF-B02", DiagSeverity::Error},
    {"KF-B03", DiagSeverity::Error},
    {"KF-B04", DiagSeverity::Error},
    {"KF-B05", DiagSeverity::Error},
    {"KF-B06", DiagSeverity::Error},
    {"KF-B07", DiagSeverity::Error},
    {"KF-B08", DiagSeverity::Error},
    {"KF-B09", DiagSeverity::Warning},
    {"KF-B10", DiagSeverity::Error},
    {"KF-B11", DiagSeverity::Error},
    // Interval interpretation (analysis/IntervalAnalysis.h).
    {"KF-V01", DiagSeverity::Warning},
    {"KF-V02", DiagSeverity::Warning},
    {"KF-V03", DiagSeverity::Warning},
    {"KF-V04", DiagSeverity::Warning},
    {"KF-V05", DiagSeverity::Note},
    {"KF-V06", DiagSeverity::Note},
};

/// Registry entry for \p Code, or nullptr for unknown codes.
const DiagCodeInfo *lookupDiagCode(const std::string &Code);

/// Where a diagnostic points: the analyzed unit (program or fused-kernel
/// name), and optionally a kernel/stage and an instruction index inside a
/// compiled stage. Unset fields stay empty / negative.
struct DiagLocation {
  std::string Unit;   ///< Program or fused-launch name.
  std::string Kernel; ///< Kernel (or stage kernel) name, if any.
  int Stage = -1;     ///< Stage index inside a staged program.
  int Inst = -1;      ///< Instruction index inside a stage.

  /// Renders "unit[:kernel][:stage N][:inst M]" (empty when unset).
  std::string str() const;
};

/// One collected diagnostic.
struct Diagnostic {
  DiagSeverity Severity = DiagSeverity::Error;
  std::string Code;    ///< Stable identifier, e.g. "KF-P01".
  std::string Message; ///< Human-readable description.
  DiagLocation Loc;
  std::string FixHint; ///< Optional actionable suggestion.
};

/// Collects diagnostics across passes and renders them. Not thread-safe;
/// one engine per analysis run.
class DiagnosticEngine {
public:
  /// Appends a fully-formed diagnostic.
  void report(Diagnostic Diag);

  /// Convenience constructors for the three severities.
  void error(std::string Code, std::string Message, DiagLocation Loc = {},
             std::string FixHint = {});
  void warning(std::string Code, std::string Message, DiagLocation Loc = {},
               std::string FixHint = {});
  void note(std::string Code, std::string Message, DiagLocation Loc = {},
            std::string FixHint = {});

  const std::vector<Diagnostic> &diagnostics() const { return Diags; }
  unsigned errorCount() const { return Errors; }
  unsigned warningCount() const { return Warnings; }
  bool empty() const { return Diags.empty(); }

  /// True when analysis must fail: any error, or any warning under
  /// \p Werror.
  bool failed(bool Werror = false) const {
    return Errors != 0 || (Werror && Warnings != 0);
  }

  /// True when some diagnostic carries \p Code (exact match).
  bool hasCode(const std::string &Code) const;

  /// One line per diagnostic: "severity: CODE: location: message" plus an
  /// indented fix hint when present.
  std::string renderText() const;

  /// Machine-readable JSON object: {"diagnostics": [...], "errors": N,
  /// "warnings": N}. Each entry carries severity, code, message, the
  /// location fields, and the fix hint. See docs/ANALYSIS.md for the
  /// schema.
  std::string renderJson() const;

private:
  std::vector<Diagnostic> Diags;
  unsigned Errors = 0;
  unsigned Warnings = 0;
};

} // namespace kf

#endif // KF_ANALYSIS_DIAGNOSTICS_H
