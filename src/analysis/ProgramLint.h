//===- analysis/ProgramLint.h - Program/IR verifier pass --------*- C++ -*-===//
///
/// \file
/// The IR/program verifier of the static analyzer: structural validity
/// (the ir/Verifier checks, re-reported with stable diagnostic codes) plus
/// lint checks the abort-on-first-error verifier cannot express --
/// dead-kernel and unused-image detection, and border-mode compatibility
/// across fusible edges (the Section IV-B index-exchange method applies
/// the *consumer's* border handling to eliminated intermediates, so a
/// window edge between kernels with different modes cannot be fused; the
/// fusion legality check rejects it and this pass warns ahead of time).
///
/// Unlike kf::verifyProgram (which pipelines use to abort on malformed
/// construction), this pass reports *every* finding into a
/// DiagnosticEngine and never aborts, so `kfc --analyze` can show a DSL
/// user the complete picture of a malformed .kfp file.
///
/// Codes: KF-P01..KF-P12 (docs/ANALYSIS.md).
///
//===----------------------------------------------------------------------===//

#ifndef KF_ANALYSIS_PROGRAMLINT_H
#define KF_ANALYSIS_PROGRAMLINT_H

#include "analysis/Diagnostics.h"
#include "ir/Program.h"

namespace kf {

/// Runs the program verifier/lint pass over \p P, reporting into \p DE.
/// Structural violations are errors; lint findings (dead kernels, unused
/// images, unfusable border-mode edges) are warnings.
void lintProgram(const Program &P, DiagnosticEngine &DE);

} // namespace kf

#endif // KF_ANALYSIS_PROGRAMLINT_H
