//===- analysis/ProgramLint.cpp --------------------------------------------===//

#include "analysis/ProgramLint.h"

#include "support/Error.h"

#include <algorithm>
#include <set>

using namespace kf;

namespace {

/// Walks one kernel body, reporting coded diagnostics. A superset of the
/// abort-on-first-error checks in ir/Verifier.cpp: every finding is
/// collected, and the walk additionally records which inputs are accessed
/// through windows / offsets (for the border-compatibility lint).
class BodyLint {
  const Program &P;
  const Kernel &K;
  DiagLocation Loc;
  DiagnosticEngine &DE;

public:
  BodyLint(const Program &P, const Kernel &K, DiagLocation Loc,
           DiagnosticEngine &DE)
      : P(P), K(K), Loc(std::move(Loc)), DE(DE),
        WindowedInput(K.Inputs.size(), false) {}

  bool SawStencil = false;
  bool SawNonZeroOffset = false;
  /// Per kernel input: accessed through a stencil window or a non-zero
  /// constant offset (i.e. the access has a halo).
  std::vector<bool> WindowedInput;

  void walk(const Expr *E, bool InStencil) {
    if (!E) {
      DE.error("KF-P05", "null expression operand", Loc);
      return;
    }
    switch (E->Kind) {
    case ExprKind::FloatConst:
    case ExprKind::CoordX:
    case ExprKind::CoordY:
      return;
    case ExprKind::MaskValue:
    case ExprKind::StencilOffX:
    case ExprKind::StencilOffY:
      if (!InStencil)
        DE.error("KF-P05", "stencil-scoped node outside a stencil", Loc);
      return;
    case ExprKind::InputAt:
      if (checkInput(E->InputIdx, E->Channel) &&
          (E->OffsetX != 0 || E->OffsetY != 0)) {
        SawNonZeroOffset = true;
        WindowedInput[E->InputIdx] = true;
      }
      return;
    case ExprKind::StencilInput:
      if (!InStencil)
        DE.error("KF-P05", "window access outside a stencil", Loc);
      if (checkInput(E->InputIdx, E->Channel) && InStencil)
        WindowedInput[E->InputIdx] = true;
      return;
    case ExprKind::Binary:
      walk(E->Lhs, InStencil);
      walk(E->Rhs, InStencil);
      return;
    case ExprKind::Unary:
      walk(E->Lhs, InStencil);
      return;
    case ExprKind::Select:
      walk(E->Cond, InStencil);
      walk(E->Lhs, InStencil);
      walk(E->Rhs, InStencil);
      return;
    case ExprKind::Stencil:
      SawStencil = true;
      if (InStencil)
        DE.error("KF-P05", "nested stencils are not supported", Loc);
      if (E->MaskIdx < 0 || E->MaskIdx >= static_cast<int>(P.numMasks()))
        DE.error("KF-P05",
                 "stencil references mask " + std::to_string(E->MaskIdx) +
                     " but the program declares " +
                     std::to_string(P.numMasks()) + " masks",
                 Loc, "declare the mask before the kernel that uses it");
      walk(E->Lhs, /*InStencil=*/true);
      return;
    }
    KF_UNREACHABLE("unknown expression kind");
  }

private:
  /// Returns true when the access indices are in range (downstream checks
  /// may then dereference them safely).
  bool checkInput(int InputIdx, int Channel) {
    if (InputIdx < 0 || InputIdx >= static_cast<int>(K.Inputs.size())) {
      DE.error("KF-P05",
               "input index " + std::to_string(InputIdx) +
                   " out of range (kernel has " +
                   std::to_string(K.Inputs.size()) + " inputs)",
               Loc);
      return false;
    }
    const ImageInfo &In = P.image(K.Inputs[InputIdx]);
    if (Channel >= In.Channels)
      DE.error("KF-P07",
               "channel " + std::to_string(Channel) +
                   " out of range for input '" + In.Name + "' (" +
                   std::to_string(In.Channels) + " channels)",
               Loc);
    const ImageInfo &Out = P.image(K.Output);
    if (Channel < 0 && In.Channels != Out.Channels)
      DE.error("KF-P07",
               "implicit channel access requires matching channel counts: "
               "input '" +
                   In.Name + "' has " + std::to_string(In.Channels) +
                   ", output '" + Out.Name + "' has " +
                   std::to_string(Out.Channels),
               Loc, "select an explicit channel with '.<n>'");
    return true;
  }

};

} // namespace

void kf::lintProgram(const Program &P, DiagnosticEngine &DE) {
  DiagLocation ProgLoc;
  ProgLoc.Unit = P.name();

  // Masks: odd positive extents, coefficient count matching the extents
  // (the accessor-arity contract stencil unrolling relies on).
  for (int M = 0; M != static_cast<int>(P.numMasks()); ++M) {
    const Mask &Msk = P.mask(M);
    if (Msk.Width <= 0 || Msk.Height <= 0 || Msk.Width % 2 == 0 ||
        Msk.Height % 2 == 0)
      DE.error("KF-P04",
               "mask " + std::to_string(M) + " extents " +
                   std::to_string(Msk.Width) + "x" +
                   std::to_string(Msk.Height) + " must be positive and odd",
               ProgLoc, "use an odd window such as 3x3 or 5x5");
    else if (Msk.Weights.size() !=
             static_cast<size_t>(Msk.Width) * Msk.Height)
      DE.error("KF-P04",
               "mask " + std::to_string(M) + " declares " +
                   std::to_string(static_cast<long long>(Msk.Width) *
                                  Msk.Height) +
                   " coefficients but carries " +
                   std::to_string(Msk.Weights.size()),
               ProgLoc);
  }

  // Image-id ranges first: every downstream check dereferences them.
  bool IdsValid = true;
  for (KernelId Id = 0; Id != P.numKernels(); ++Id) {
    const Kernel &K = P.kernel(Id);
    DiagLocation Loc = ProgLoc;
    Loc.Kernel = K.Name;
    if (K.Output >= P.numImages()) {
      DE.error("KF-P02",
               "output image id " + std::to_string(K.Output) +
                   " is not a declared image",
               Loc);
      IdsValid = false;
    }
    for (ImageId In : K.Inputs)
      if (In >= P.numImages()) {
        DE.error("KF-P02",
                 "input image id " + std::to_string(In) +
                     " is not a declared image",
                 Loc);
        IdsValid = false;
      }
  }
  if (!IdsValid)
    return; // Structural checks below would dereference invalid ids.

  std::set<ImageId> Produced;
  std::set<ImageId> Consumed;
  for (KernelId Id = 0; Id != P.numKernels(); ++Id) {
    const Kernel &K = P.kernel(Id);
    DiagLocation Loc = ProgLoc;
    Loc.Kernel = K.Name;

    if (!Produced.insert(K.Output).second)
      DE.error("KF-P03",
               "image '" + P.image(K.Output).Name +
                   "' has more than one producer",
               Loc, "each image may be written by at most one kernel");
    if (K.Granularity <= 0)
      DE.error("KF-P12",
               "granularity " + std::to_string(K.Granularity) +
                   " must be positive",
               Loc);

    const ImageInfo &Out = P.image(K.Output);
    for (ImageId In : K.Inputs) {
      Consumed.insert(In);
      const ImageInfo &InInfo = P.image(In);
      if (InInfo.Width != Out.Width || InInfo.Height != Out.Height)
        DE.error("KF-P06",
                 "input '" + InInfo.Name + "' (" +
                     std::to_string(InInfo.Width) + "x" +
                     std::to_string(InInfo.Height) +
                     ") differs in shape from output '" + Out.Name + "' (" +
                     std::to_string(Out.Width) + "x" +
                     std::to_string(Out.Height) + ")",
                 Loc);
      if (In == K.Output)
        DE.error("KF-P06", "kernel reads its own output '" + Out.Name + "'",
                 Loc);
    }

    BodyLint Lint(P, K, Loc, DE);
    Lint.walk(K.Body, /*InStencil=*/false);

    bool IsWindowed = Lint.SawStencil || Lint.SawNonZeroOffset;
    if (K.Kind == OperatorKind::Point && IsWindowed)
      DE.error("KF-P08",
               "point kernel accesses inputs away from the iteration point",
               Loc, "declare the kernel 'local' or drop the window access");
    if (K.Kind == OperatorKind::Local && !IsWindowed)
      DE.error("KF-P08", "local kernel contains no window access", Loc,
               "declare the kernel 'point' or add a window access");

    // Border-mode compatibility across fusible edges (Section IV-B): a
    // window read of a produced intermediate is a fusion candidate whose
    // index exchange applies *this* kernel's border mode; if the producer
    // is a local kernel with a different mode, the edge cannot legally
    // fuse (fusion/Legality rejects it) -- warn at program level.
    for (size_t InIdx = 0; InIdx != K.Inputs.size(); ++InIdx) {
      if (!Lint.WindowedInput[InIdx])
        continue;
      std::optional<KernelId> Producer = P.producerOf(K.Inputs[InIdx]);
      if (!Producer)
        continue;
      const Kernel &Prod = P.kernel(*Producer);
      if (Prod.Kind == OperatorKind::Local && Prod.Border != K.Border)
        DE.warning("KF-P11",
                   "window edge '" + Prod.Name + "' -> '" + K.Name +
                       "' mixes border modes (" +
                       borderModeName(Prod.Border) + " vs " +
                       borderModeName(K.Border) +
                       "); the edge cannot be fused",
                   Loc, "use one border mode along the fusible chain");
    }
  }

  // Unused images: declared but neither produced nor consumed.
  for (ImageId Id = 0; Id != P.numImages(); ++Id)
    if (!Produced.count(Id) && !Consumed.count(Id))
      DE.warning("KF-P10",
                 "image '" + P.image(Id).Name +
                     "' is neither produced nor consumed",
                 ProgLoc, "remove the unused image declaration");

  // Cycle check; the dead-kernel reachability below needs an acyclic DAG.
  Digraph Dag = P.buildKernelDag();
  if (Dag.hasCycle()) {
    DE.error("KF-P01", "kernel dependence graph has a cycle", ProgLoc,
             "break the cycle: no kernel may transitively feed itself");
    return;
  }

  // Dead kernels. Terminal outputs (produced, never consumed) are the
  // pipeline results; with a single terminal every kernel provably feeds
  // it. With several, the last declared kernel's output is the primary
  // result (builders and the serializer emit kernels in topological
  // order), and kernels that cannot reach it produce unused outputs.
  std::vector<ImageId> Terminals = P.terminalOutputs();
  if (Terminals.size() > 1 && P.numKernels() != 0) {
    KernelId Primary = P.numKernels() - 1;
    std::vector<bool> ReachesPrimary(P.numKernels(), false);
    ReachesPrimary[Primary] = true;
    std::vector<KernelId> Work{Primary};
    while (!Work.empty()) {
      KernelId N = Work.back();
      Work.pop_back();
      for (Digraph::NodeId Pred : Dag.predecessors(N))
        if (!ReachesPrimary[Pred]) {
          ReachesPrimary[Pred] = true;
          Work.push_back(Pred);
        }
    }
    for (KernelId Id = 0; Id != P.numKernels(); ++Id)
      if (!ReachesPrimary[Id]) {
        DiagLocation Loc = ProgLoc;
        Loc.Kernel = P.kernel(Id).Name;
        DE.warning("KF-P09",
                   "dead kernel: no path to the pipeline result '" +
                       P.image(P.kernel(Primary).Output).Name + "'",
                   Loc, "remove the dead kernel or consume its output");
      }
  }
}
