//===- frontend/Serializer.cpp ----------------------------------------------===//

#include "frontend/Serializer.h"

#include "support/Error.h"
#include "support/StringUtils.h"

#include <cstdio>

using namespace kf;

/// Prints a float with round-trip precision ("%.9g" is exact for IEEE
/// binary32).
static std::string floatText(float Value) {
  char Buffer[64];
  std::snprintf(Buffer, sizeof(Buffer), "%.9g", static_cast<double>(Value));
  return Buffer;
}

static std::string channelSuffix(int Channel) {
  return Channel < 0 ? std::string() : "." + std::to_string(Channel);
}

std::string kf::serializeExpr(const Expr *E,
                              const std::vector<std::string> &InputNames) {
  auto name = [&](int Idx) { return InputNames[Idx]; };
  switch (E->Kind) {
  case ExprKind::FloatConst:
    return floatText(E->Value);
  case ExprKind::CoordX:
    return "x";
  case ExprKind::CoordY:
    return "y";
  case ExprKind::StencilOffX:
    return "dx";
  case ExprKind::StencilOffY:
    return "dy";
  case ExprKind::MaskValue:
    return "mv";
  case ExprKind::InputAt:
    if (E->OffsetX == 0 && E->OffsetY == 0)
      return name(E->InputIdx) + channelSuffix(E->Channel);
    return name(E->InputIdx) + "(" + std::to_string(E->OffsetX) + ", " +
           std::to_string(E->OffsetY) + ")" + channelSuffix(E->Channel);
  case ExprKind::StencilInput:
    return name(E->InputIdx) + "[]" + channelSuffix(E->Channel);
  case ExprKind::Binary: {
    std::string L = serializeExpr(E->Lhs, InputNames);
    std::string R = serializeExpr(E->Rhs, InputNames);
    switch (E->BinaryOp) {
    case BinOp::Add:
      return "(" + L + " + " + R + ")";
    case BinOp::Sub:
      return "(" + L + " - " + R + ")";
    case BinOp::Mul:
      return "(" + L + " * " + R + ")";
    case BinOp::Div:
      return "(" + L + " / " + R + ")";
    case BinOp::CmpLT:
      return "(" + L + " < " + R + ")";
    case BinOp::CmpGT:
      return "(" + L + " > " + R + ")";
    case BinOp::Min:
      return "min(" + L + ", " + R + ")";
    case BinOp::Max:
      return "max(" + L + ", " + R + ")";
    case BinOp::Pow:
      return "pow(" + L + ", " + R + ")";
    }
    KF_UNREACHABLE("unknown binary op");
  }
  case ExprKind::Unary: {
    std::string V = serializeExpr(E->Lhs, InputNames);
    switch (E->UnaryOp) {
    case UnOp::Neg:
      return "(-" + V + ")";
    case UnOp::Abs:
      return "abs(" + V + ")";
    case UnOp::Sqrt:
      return "sqrt(" + V + ")";
    case UnOp::Exp:
      return "exp(" + V + ")";
    case UnOp::Log:
      return "log(" + V + ")";
    case UnOp::Floor:
      return "floor(" + V + ")";
    }
    KF_UNREACHABLE("unknown unary op");
  }
  case ExprKind::Select:
    return "select(" + serializeExpr(E->Cond, InputNames) + ", " +
           serializeExpr(E->Lhs, InputNames) + ", " +
           serializeExpr(E->Rhs, InputNames) + ")";
  case ExprKind::Stencil: {
    const char *Fn = nullptr;
    switch (E->Reduce) {
    case ReduceOp::Sum:
      Fn = "sum";
      break;
    case ReduceOp::Product:
      Fn = "product";
      break;
    case ReduceOp::Min:
      Fn = "reduce_min";
      break;
    case ReduceOp::Max:
      Fn = "reduce_max";
      break;
    }
    return std::string(Fn) + "(m" + std::to_string(E->MaskIdx) + ", " +
           serializeExpr(E->Lhs, InputNames) + ")";
  }
  }
  KF_UNREACHABLE("unknown expression kind");
}

std::string kf::serializeProgram(const Program &P) {
  std::string Out = "program " + P.name() + "\n\n";

  for (ImageId Id = 0; Id != P.numImages(); ++Id) {
    const ImageInfo &Info = P.image(Id);
    Out += "image " + Info.Name + " " + std::to_string(Info.Width) + " " +
           std::to_string(Info.Height);
    if (Info.Channels != 1)
      Out += " " + std::to_string(Info.Channels);
    Out += "\n";
  }
  if (P.numMasks() > 0)
    Out += "\n";
  for (int M = 0; M != static_cast<int>(P.numMasks()); ++M) {
    const Mask &Msk = P.mask(M);
    Out += "mask m" + std::to_string(M) + " " + std::to_string(Msk.Width) +
           " " + std::to_string(Msk.Height) + " [";
    for (size_t I = 0; I != Msk.Weights.size(); ++I) {
      if (I != 0)
        Out += " ";
      Out += floatText(Msk.Weights[I]);
    }
    Out += "]\n";
  }

  for (KernelId Id = 0; Id != P.numKernels(); ++Id) {
    const Kernel &K = P.kernel(Id);
    std::vector<std::string> InputNames;
    for (ImageId In : K.Inputs)
      InputNames.push_back(P.image(In).Name);

    Out += "\n" + std::string(operatorKindName(K.Kind)) + " kernel " +
           K.Name + "(" + joinStrings(InputNames, ", ") + ") -> " +
           P.image(K.Output).Name;
    if (K.Kind == OperatorKind::Local) {
      Out += std::string(" border ") + borderModeName(K.Border);
      if (K.Border == BorderMode::Constant)
        Out += " value " + floatText(K.BorderConstant);
    }
    if (K.Granularity != 1)
      Out += " granularity " + std::to_string(K.Granularity);
    Out += " {\n  out = " + serializeExpr(K.Body, InputNames) + "\n}\n";
  }
  return Out;
}
