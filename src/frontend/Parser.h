//===- frontend/Parser.h - Pipeline-format parser ---------------*- C++ -*-===//
///
/// \file
/// Recursive-descent parser for the .kfp pipeline format (see Lexer.h for
/// a sample). Grammar:
///
///   program    := "program" IDENT decl*
///   decl       := image | mask | kernel
///   image      := "image" IDENT INT INT [INT]
///   mask       := "mask" IDENT INT INT "[" signed-number* "]"
///   kernel     := ("point"|"local"|"global") "kernel" IDENT
///                 "(" [IDENT ("," IDENT)*] ")" "->" IDENT
///                 ["border" ("clamp"|"mirror"|"repeat"|"constant"
///                            ["value" signed-number])]
///                 ["granularity" INT]
///                 "{" "out" "=" expr "}"
///
///   expr       := cmp
///   cmp        := add (("<" | ">") add)*
///   add        := mul (("+" | "-") mul)*
///   mul        := unary (("*" | "/") unary)*
///   unary      := "-" unary | primary
///   primary    := NUMBER | "x" | "y" | "dx" | "dy" | "mv"
///               | FN "(" expr ("," expr)* ")"       builtin call
///               | "sum"|"product"|"reduce_min"|"reduce_max"
///                      "(" MASKNAME "," expr ")"    stencil reduction
///               | INPUT ["." INT]                   point access
///               | INPUT "(" SINT "," SINT ")" ["." INT]   offset access
///               | INPUT "[" "]" ["." INT]           window access
///               | "(" expr ")"
///
/// Builtins: min, max, pow, select, sqrt, exp, log, abs, floor.
/// Input names refer to the kernel's parameter list; mask names to mask
/// declarations. Diagnostics carry line numbers; parsing is total (it
/// recovers nothing -- the first error aborts the parse).
///
//===----------------------------------------------------------------------===//

#ifndef KF_FRONTEND_PARSER_H
#define KF_FRONTEND_PARSER_H

#include "ir/Program.h"

#include <memory>
#include <string>
#include <vector>

namespace kf {

/// Result of parsing a pipeline file: a program (on success) and
/// diagnostics (on failure).
struct ParseResult {
  std::unique_ptr<Program> Prog;
  std::vector<std::string> Errors;

  bool success() const { return Prog != nullptr && Errors.empty(); }
};

/// Parses pipeline text into a verified Program. Verification diagnostics
/// are folded into Errors. With \p Verify false the abort-style verifier
/// is skipped and any structurally parseable program is returned -- the
/// static analyzer (analysis/ProgramLint.h) uses this to produce coded
/// diagnostics for programs the strict path would reject wholesale.
ParseResult parsePipelineText(const std::string &Source, bool Verify = true);

/// Reads and parses a .kfp file; I/O failures surface as Errors.
ParseResult parsePipelineFile(const std::string &Path, bool Verify = true);

} // namespace kf

#endif // KF_FRONTEND_PARSER_H
