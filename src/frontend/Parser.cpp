//===- frontend/Parser.cpp -------------------------------------------------===//

#include "frontend/Parser.h"

#include "frontend/Lexer.h"
#include "ir/Verifier.h"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>

using namespace kf;

namespace {

/// Recursive-descent parser over the token stream. The first error stops
/// the parse; Failed latches so downstream code can bail out cheaply.
class PipelineParser {
public:
  PipelineParser(std::vector<Token> Tokens, std::vector<std::string> &Errors,
                 bool Strict = true)
      : Tokens(std::move(Tokens)), Errors(Errors), Strict(Strict) {}

  std::unique_ptr<Program> run() {
    if (!expectKeyword("program"))
      return nullptr;
    Token Name = expect(TokenKind::Ident, "program name");
    if (Failed)
      return nullptr;
    Prog = std::make_unique<Program>(Name.Text);

    while (!Failed && peek().Kind != TokenKind::EndOfFile) {
      const Token &Tok = peek();
      if (Tok.Kind != TokenKind::Ident) {
        error("expected a declaration ('image', 'mask', or a kernel)");
        return nullptr;
      }
      if (Tok.Text == "image")
        parseImage();
      else if (Tok.Text == "mask")
        parseMask();
      else if (Tok.Text == "point" || Tok.Text == "local" ||
               Tok.Text == "global")
        parseKernel();
      else
        error("unknown declaration '" + Tok.Text + "'");
    }
    if (Failed)
      return nullptr;
    return std::move(Prog);
  }

private:
  // ----- token plumbing -----------------------------------------------

  const Token &peek(unsigned Ahead = 0) const {
    size_t Index = std::min(Pos + Ahead, Tokens.size() - 1);
    return Tokens[Index];
  }

  Token advance() { return Tokens[std::min(Pos++, Tokens.size() - 1)]; }

  void error(const std::string &Message) {
    if (!Failed)
      Errors.push_back("line " + std::to_string(peek().Line) + ": " +
                       Message);
    Failed = true;
  }

  Token expect(TokenKind Kind, const std::string &What) {
    if (Failed)
      return Token{};
    if (peek().Kind != Kind) {
      error("expected " + What + ", got " +
            tokenKindName(peek().Kind) +
            (peek().Text.empty() ? "" : " '" + peek().Text + "'"));
      return Token{};
    }
    return advance();
  }

  bool expectKeyword(const std::string &Word) {
    if (Failed)
      return false;
    if (peek().Kind != TokenKind::Ident || peek().Text != Word) {
      error("expected '" + Word + "'");
      return false;
    }
    advance();
    return true;
  }

  bool tryKeyword(const std::string &Word) {
    if (!Failed && peek().Kind == TokenKind::Ident && peek().Text == Word) {
      advance();
      return true;
    }
    return false;
  }

  long parseInt(const std::string &What) {
    bool Negative = false;
    if (peek().Kind == TokenKind::Minus) {
      advance();
      Negative = true;
    }
    Token Tok = expect(TokenKind::Number, What);
    if (Failed)
      return 0;
    errno = 0;
    long Value = std::strtol(Tok.Text.c_str(), nullptr, 10);
    if (errno == ERANGE) {
      // Without the check an out-of-range literal silently clamps to
      // LONG_MAX and parses "successfully".
      error("integer literal '" + Tok.Text + "' is out of range");
      return 0;
    }
    return Negative ? -Value : Value;
  }

  /// Converts a Number token to float with overflow detection: a literal
  /// like 1e999 clamps to HUGE_VALF with ERANGE and must be a parse
  /// error, while underflow to a denormal or zero is an acceptable
  /// nearest representation.
  float floatLiteral(const Token &Tok) {
    errno = 0;
    float Value = std::strtof(Tok.Text.c_str(), nullptr);
    if (errno == ERANGE && std::abs(Value) == HUGE_VALF) {
      error("float literal '" + Tok.Text + "' is out of range");
      return 0.0f;
    }
    return Value;
  }

  float parseFloat(const std::string &What) {
    bool Negative = false;
    if (peek().Kind == TokenKind::Minus) {
      advance();
      Negative = true;
    }
    Token Tok = expect(TokenKind::Number, What);
    if (Failed)
      return 0.0f;
    float Value = floatLiteral(Tok);
    return Negative ? -Value : Value;
  }

  // ----- declarations ---------------------------------------------------

  void parseImage() {
    advance(); // 'image'
    Token Name = expect(TokenKind::Ident, "image name");
    long Width = parseInt("image width");
    long Height = parseInt("image height");
    long Channels = 1;
    if (peek().Kind == TokenKind::Number)
      Channels = parseInt("image channels");
    if (Failed)
      return;
    if (Width <= 0 || Height <= 0 || Channels <= 0) {
      error("image extents must be positive");
      return;
    }
    if (Images.count(Name.Text)) {
      error("image '" + Name.Text + "' redeclared");
      return;
    }
    Images[Name.Text] = Prog->addImage(Name.Text, static_cast<int>(Width),
                                       static_cast<int>(Height),
                                       static_cast<int>(Channels));
  }

  void parseMask() {
    advance(); // 'mask'
    Token Name = expect(TokenKind::Ident, "mask name");
    long Width = parseInt("mask width");
    long Height = parseInt("mask height");
    expect(TokenKind::LBrack, "'['");
    std::vector<float> Weights;
    while (!Failed && peek().Kind != TokenKind::RBrack)
      Weights.push_back(parseFloat("mask weight"));
    expect(TokenKind::RBrack, "']'");
    if (Failed)
      return;
    // In lenient mode malformed masks are admitted as-is so the static
    // analyzer can report them with codes (KF-P04) instead of the parse
    // aborting on the first problem.
    if (Strict) {
      if (Width <= 0 || Height <= 0 || Width % 2 == 0 || Height % 2 == 0) {
        error("mask extents must be positive and odd");
        return;
      }
      if (Weights.size() != static_cast<size_t>(Width * Height)) {
        error("mask '" + Name.Text + "' expects " +
              std::to_string(Width * Height) + " weights, got " +
              std::to_string(Weights.size()));
        return;
      }
    }
    if (Masks.count(Name.Text)) {
      error("mask '" + Name.Text + "' redeclared");
      return;
    }
    // Field assignment sidesteps the asserting Mask constructor, which
    // lenient mode must be able to violate.
    Mask M;
    M.Width = static_cast<int>(Width);
    M.Height = static_cast<int>(Height);
    M.Weights = std::move(Weights);
    Masks[Name.Text] = Prog->addMask(std::move(M));
  }

  void parseKernel() {
    Token KindTok = advance(); // point/local/global
    Kernel K;
    if (KindTok.Text == "point")
      K.Kind = OperatorKind::Point;
    else if (KindTok.Text == "local")
      K.Kind = OperatorKind::Local;
    else
      K.Kind = OperatorKind::Global;

    expectKeyword("kernel");
    Token Name = expect(TokenKind::Ident, "kernel name");
    K.Name = Name.Text;

    expect(TokenKind::LParen, "'('");
    CurrentInputs.clear();
    while (!Failed && peek().Kind != TokenKind::RParen) {
      if (!CurrentInputs.empty())
        expect(TokenKind::Comma, "','");
      Token In = expect(TokenKind::Ident, "input image name");
      if (Failed)
        return;
      auto It = Images.find(In.Text);
      if (It == Images.end()) {
        error("unknown image '" + In.Text + "'");
        return;
      }
      CurrentInputs.push_back(In.Text);
      K.Inputs.push_back(It->second);
    }
    expect(TokenKind::RParen, "')'");
    expect(TokenKind::Arrow, "'->'");
    Token Out = expect(TokenKind::Ident, "output image name");
    if (Failed)
      return;
    auto OutIt = Images.find(Out.Text);
    if (OutIt == Images.end()) {
      error("unknown image '" + Out.Text + "'");
      return;
    }
    K.Output = OutIt->second;

    if (tryKeyword("border")) {
      Token Mode = expect(TokenKind::Ident, "border mode");
      if (Failed)
        return;
      if (Mode.Text == "clamp")
        K.Border = BorderMode::Clamp;
      else if (Mode.Text == "mirror")
        K.Border = BorderMode::Mirror;
      else if (Mode.Text == "repeat")
        K.Border = BorderMode::Repeat;
      else if (Mode.Text == "constant")
        K.Border = BorderMode::Constant;
      else {
        error("unknown border mode '" + Mode.Text + "'");
        return;
      }
      if (tryKeyword("value"))
        K.BorderConstant = parseFloat("border constant");
    }
    if (tryKeyword("granularity"))
      K.Granularity = static_cast<int>(parseInt("granularity"));

    expect(TokenKind::LBrace, "'{'");
    expectKeyword("out");
    expect(TokenKind::Equals, "'='");
    K.Body = parseExpr();
    expect(TokenKind::RBrace, "'}'");
    if (Failed)
      return;
    Prog->addKernel(std::move(K));
  }

  // ----- expressions ----------------------------------------------------

  const Expr *parseExpr() { return parseCmp(); }

  const Expr *parseCmp() {
    const Expr *Lhs = parseAdd();
    while (!Failed && (peek().Kind == TokenKind::Less ||
                       peek().Kind == TokenKind::Greater)) {
      BinOp Op = advance().Kind == TokenKind::Less ? BinOp::CmpLT
                                                   : BinOp::CmpGT;
      const Expr *Rhs = parseAdd();
      if (Failed)
        return nullptr;
      Lhs = Prog->context().binary(Op, Lhs, Rhs);
    }
    return Lhs;
  }

  const Expr *parseAdd() {
    const Expr *Lhs = parseMul();
    while (!Failed && (peek().Kind == TokenKind::Plus ||
                       peek().Kind == TokenKind::Minus)) {
      BinOp Op =
          advance().Kind == TokenKind::Plus ? BinOp::Add : BinOp::Sub;
      const Expr *Rhs = parseMul();
      if (Failed)
        return nullptr;
      Lhs = Prog->context().binary(Op, Lhs, Rhs);
    }
    return Lhs;
  }

  const Expr *parseMul() {
    const Expr *Lhs = parseUnary();
    while (!Failed && (peek().Kind == TokenKind::Star ||
                       peek().Kind == TokenKind::Slash)) {
      BinOp Op =
          advance().Kind == TokenKind::Star ? BinOp::Mul : BinOp::Div;
      const Expr *Rhs = parseUnary();
      if (Failed)
        return nullptr;
      Lhs = Prog->context().binary(Op, Lhs, Rhs);
    }
    return Lhs;
  }

  const Expr *parseUnary() {
    if (peek().Kind == TokenKind::Minus) {
      advance();
      // Fold "-<literal>" into a negative constant so that serialized
      // negative literals round-trip to the same AST.
      if (peek().Kind == TokenKind::Number) {
        Token Tok = advance();
        return Prog->context().floatConst(-floatLiteral(Tok));
      }
      const Expr *Operand = parseUnary();
      if (Failed)
        return nullptr;
      return Prog->context().unary(UnOp::Neg, Operand);
    }
    return parsePrimary();
  }

  /// Optional ".N" channel suffix after an input access.
  int parseChannelSuffix() {
    if (peek().Kind != TokenKind::Dot)
      return -1;
    advance();
    return static_cast<int>(parseInt("channel index"));
  }

  int inputIndexOf(const std::string &Name) {
    for (size_t I = 0; I != CurrentInputs.size(); ++I)
      if (CurrentInputs[I] == Name)
        return static_cast<int>(I);
    return -1;
  }

  const Expr *parseReduction(ReduceOp Op) {
    ExprContext &C = Prog->context();
    expect(TokenKind::LParen, "'('");
    Token MaskName = expect(TokenKind::Ident, "mask name");
    if (Failed)
      return nullptr;
    auto It = Masks.find(MaskName.Text);
    if (It == Masks.end()) {
      error("unknown mask '" + MaskName.Text + "'");
      return nullptr;
    }
    expect(TokenKind::Comma, "','");
    const Expr *Element = parseExpr();
    expect(TokenKind::RParen, "')'");
    if (Failed)
      return nullptr;
    return C.stencil(It->second, Op, Element);
  }

  const Expr *parseCall(UnOp Op) {
    ExprContext &C = Prog->context();
    expect(TokenKind::LParen, "'('");
    const Expr *Operand = parseExpr();
    expect(TokenKind::RParen, "')'");
    if (Failed)
      return nullptr;
    return C.unary(Op, Operand);
  }

  const Expr *parseCall2(BinOp Op) {
    ExprContext &C = Prog->context();
    expect(TokenKind::LParen, "'('");
    const Expr *Lhs = parseExpr();
    expect(TokenKind::Comma, "','");
    const Expr *Rhs = parseExpr();
    expect(TokenKind::RParen, "')'");
    if (Failed)
      return nullptr;
    return C.binary(Op, Lhs, Rhs);
  }

  const Expr *parsePrimary() {
    ExprContext &C = Prog->context();
    if (Failed)
      return nullptr;

    if (peek().Kind == TokenKind::Number) {
      Token Tok = advance();
      return C.floatConst(floatLiteral(Tok));
    }
    if (peek().Kind == TokenKind::LParen) {
      advance();
      const Expr *Inner = parseExpr();
      expect(TokenKind::RParen, "')'");
      return Inner;
    }
    if (peek().Kind != TokenKind::Ident) {
      error("expected an expression");
      return nullptr;
    }

    Token Name = advance();
    const std::string &Id = Name.Text;

    // Coordinate / stencil-scoped scalars.
    if (Id == "x")
      return C.coordX();
    if (Id == "y")
      return C.coordY();
    if (Id == "dx")
      return C.stencilOffX();
    if (Id == "dy")
      return C.stencilOffY();
    if (Id == "mv")
      return C.maskValue();

    // Builtin calls.
    if (Id == "sqrt")
      return parseCall(UnOp::Sqrt);
    if (Id == "exp")
      return parseCall(UnOp::Exp);
    if (Id == "log")
      return parseCall(UnOp::Log);
    if (Id == "abs")
      return parseCall(UnOp::Abs);
    if (Id == "floor")
      return parseCall(UnOp::Floor);
    if (Id == "min")
      return parseCall2(BinOp::Min);
    if (Id == "max")
      return parseCall2(BinOp::Max);
    if (Id == "pow")
      return parseCall2(BinOp::Pow);
    if (Id == "select") {
      expect(TokenKind::LParen, "'('");
      const Expr *Cond = parseExpr();
      expect(TokenKind::Comma, "','");
      const Expr *TrueValue = parseExpr();
      expect(TokenKind::Comma, "','");
      const Expr *FalseValue = parseExpr();
      expect(TokenKind::RParen, "')'");
      if (Failed)
        return nullptr;
      return C.select(Cond, TrueValue, FalseValue);
    }
    if (Id == "sum")
      return parseReduction(ReduceOp::Sum);
    if (Id == "product")
      return parseReduction(ReduceOp::Product);
    if (Id == "reduce_min")
      return parseReduction(ReduceOp::Min);
    if (Id == "reduce_max")
      return parseReduction(ReduceOp::Max);

    // Input accesses.
    int InputIdx = inputIndexOf(Id);
    if (InputIdx < 0) {
      error("unknown name '" + Id + "' (not an input of this kernel)");
      return nullptr;
    }
    if (peek().Kind == TokenKind::LBrack) {
      advance();
      expect(TokenKind::RBrack, "']' (window accesses take no indices)");
      int Channel = parseChannelSuffix();
      if (Failed)
        return nullptr;
      return C.stencilInput(InputIdx, Channel);
    }
    if (peek().Kind == TokenKind::LParen) {
      advance();
      long Ox = parseInt("x offset");
      expect(TokenKind::Comma, "','");
      long Oy = parseInt("y offset");
      expect(TokenKind::RParen, "')'");
      int Channel = parseChannelSuffix();
      if (Failed)
        return nullptr;
      return C.inputAt(InputIdx, static_cast<int>(Ox),
                       static_cast<int>(Oy), Channel);
    }
    int Channel = parseChannelSuffix();
    if (Failed)
      return nullptr;
    return C.inputAt(InputIdx, 0, 0, Channel);
  }

  std::vector<Token> Tokens;
  std::vector<std::string> &Errors;
  bool Strict = true;
  size_t Pos = 0;
  bool Failed = false;

  std::unique_ptr<Program> Prog;
  std::map<std::string, ImageId> Images;
  std::map<std::string, int> Masks;
  std::vector<std::string> CurrentInputs;
};

} // namespace

ParseResult kf::parsePipelineText(const std::string &Source, bool Verify) {
  ParseResult Result;
  std::vector<Token> Tokens = lexPipelineText(Source, Result.Errors);
  if (!Result.Errors.empty())
    return Result;

  PipelineParser Parser(std::move(Tokens), Result.Errors, /*Strict=*/Verify);
  Result.Prog = Parser.run();
  if (!Result.Prog || !Verify)
    return Result;

  for (std::string &Diag : verifyProgram(*Result.Prog))
    Result.Errors.push_back("verifier: " + std::move(Diag));
  if (!Result.Errors.empty())
    Result.Prog.reset();
  return Result;
}

ParseResult kf::parsePipelineFile(const std::string &Path, bool Verify) {
  ParseResult Result;
  std::FILE *File = std::fopen(Path.c_str(), "rb");
  if (!File) {
    Result.Errors.push_back("cannot open '" + Path + "'");
    return Result;
  }
  std::string Source;
  char Buffer[4096];
  size_t Count;
  while ((Count = std::fread(Buffer, 1, sizeof(Buffer), File)) > 0)
    Source.append(Buffer, Count);
  std::fclose(File);
  return parsePipelineText(Source, Verify);
}
