//===- frontend/LazyScript.h - Op-per-line lazy builder scripts -*- C++ -*-===//
///
/// \file
/// The tiny op-per-line script format behind `kfc --lazy <script>`: each
/// line records one operation into a LazyPipeline, exactly as a client of
/// the handle API would. The format exists for CLI-driven testing of the
/// lazy frontend -- it is a *builder transcript*, not a language: no
/// expressions, no nesting, one op per line.
///
///   # comments and blank lines are skipped
///   input  NAME W H [C]          # declare an external input image
///   mask   NAME W H w0 w1 ...    # declare a mask (W*H weights)
///   NAME = add A B               # binary: add sub mul div min max pow
///                                #         cmplt cmpgt  (A/B: value name
///                                #         or float literal)
///   NAME = neg A                 # unary: neg abs sqrt exp log floor
///   NAME = select C A B          # elementwise C != 0 ? A : B
///   NAME = conv MASK SRC [BORDER [CONST]]      # convolution
///   NAME = reduce_min  MASK SRC [BORDER [CONST]]  # also reduce_max,
///                                #   reduce_sum, reduce_product
///   output NAME [NAME ...]       # request values for materialization
///
/// BORDER is one of clamp|mirror|repeat|constant (CONST only with
/// constant). Values may be used before they are defined -- the script is
/// two-passed -- so acyclicity is NOT a property of the grammar: a cyclic
/// script parses fine and is rejected by the analyzer gate with KF-P01,
/// which is exactly the untrusted-input path the tests exercise.
///
/// Parse errors carry the frontend KF-* codes (see frontend/Lazy.h):
/// KF-P00 malformed line, KF-P02 undefined value name, KF-P03 value
/// redefinition, KF-P05 undefined mask name.
///
//===----------------------------------------------------------------------===//

#ifndef KF_FRONTEND_LAZYSCRIPT_H
#define KF_FRONTEND_LAZYSCRIPT_H

#include "frontend/Lazy.h"

#include <memory>
#include <string>
#include <vector>

namespace kf {

/// Result of parsing a lazy builder script. The pipeline lives behind a
/// stable pointer because LazyImage handles bind to the pipeline's
/// address; outputs() mints handles against it on demand.
struct LazyScriptResult {
  std::unique_ptr<LazyPipeline> Pipeline;
  std::vector<int> OutputNodes;  ///< Node indices named by `output` lines.
  std::vector<LazyIssue> Errors; ///< Parse-level problems (KF-P00/02/03/05).

  bool ok() const { return Errors.empty() && Pipeline != nullptr; }

  /// Handles for the requested outputs, bound to *this* result's pipeline.
  std::vector<LazyImage> outputs() const;
};

/// Parses script \p Text into a freshly recorded pipeline named
/// \p PipelineName. Total: never throws or aborts; problems land in
/// LazyScriptResult::Errors with line locations.
LazyScriptResult parseLazyScript(const std::string &Text,
                                 const std::string &PipelineName = "lazy");

/// Reads and parses the script at \p Path. Unreadable or empty paths
/// produce a KF-P00 error (the hardened `--lazy` contract: a diagnostic,
/// never a crash).
LazyScriptResult parseLazyScriptFile(const std::string &Path);

} // namespace kf

#endif // KF_FRONTEND_LAZYSCRIPT_H
