//===- frontend/Lazy.cpp - Record-and-fuse lazy frontend ------------------===//

#include "frontend/Lazy.h"

#include <algorithm>
#include <climits>

namespace kf {

const char *lazyOpKindName(LazyOpKind Kind) {
  switch (Kind) {
  case LazyOpKind::Input:
    return "input";
  case LazyOpKind::Binary:
    return "binary";
  case LazyOpKind::Unary:
    return "unary";
  case LazyOpKind::Select:
    return "select";
  case LazyOpKind::Stencil:
    return "stencil";
  }
  return "?";
}

int LazyPipeline::resolveOperand(const LazyImage &Handle) {
  // A handle from another pipeline (or a default-constructed one) must not
  // be dereferenced against this pipeline's node table. Map it to an index
  // that can never be a recorded node so lowering reports KF-P02.
  if (Handle.owner() != this)
    return INT_MIN;
  return Handle.node();
}

LazyImage LazyPipeline::input(std::string InputName, int Width, int Height,
                              int Channels) {
  LazyNode Node;
  Node.Op = LazyOpKind::Input;
  Node.Name = std::move(InputName);
  Node.Width = Width;
  Node.Height = Height;
  Node.Channels = Channels;
  return record(std::move(Node));
}

int LazyPipeline::addMask(int Width, int Height, std::vector<float> Weights) {
  // Field-by-field assignment on purpose: the Mask convenience constructor
  // asserts well-formedness, but lazy masks are untrusted and must reach
  // the linter (KF-P04) intact.
  Mask MaskValue;
  MaskValue.Width = Width;
  MaskValue.Height = Height;
  MaskValue.Weights = std::move(Weights);
  Masks.push_back(std::move(MaskValue));
  return static_cast<int>(Masks.size()) - 1;
}

LazyImage LazyPipeline::binary(BinOp Op, LazyImage A, LazyImage B) {
  LazyNode Node;
  Node.Op = LazyOpKind::Binary;
  Node.Bin = Op;
  Node.A = resolveOperand(A);
  Node.B = resolveOperand(B);
  return record(std::move(Node));
}

LazyImage LazyPipeline::binary(BinOp Op, LazyImage A, float B) {
  LazyNode Node;
  Node.Op = LazyOpKind::Binary;
  Node.Bin = Op;
  Node.A = resolveOperand(A);
  Node.BIsLit = true;
  Node.LitB = B;
  return record(std::move(Node));
}

LazyImage LazyPipeline::binary(BinOp Op, float A, LazyImage B) {
  LazyNode Node;
  Node.Op = LazyOpKind::Binary;
  Node.Bin = Op;
  Node.AIsLit = true;
  Node.LitA = A;
  Node.B = resolveOperand(B);
  return record(std::move(Node));
}

LazyImage LazyPipeline::unary(UnOp Op, LazyImage A) {
  LazyNode Node;
  Node.Op = LazyOpKind::Unary;
  Node.Un = Op;
  Node.A = resolveOperand(A);
  return record(std::move(Node));
}

LazyImage LazyPipeline::select(LazyImage Cond, LazyImage TrueValue,
                               LazyImage FalseValue) {
  LazyNode Node;
  Node.Op = LazyOpKind::Select;
  Node.C = resolveOperand(Cond);
  Node.A = resolveOperand(TrueValue);
  Node.B = resolveOperand(FalseValue);
  return record(std::move(Node));
}

LazyImage LazyPipeline::convolve(LazyImage Src, int MaskIdx, BorderMode Border,
                                 float BorderConstant, ReduceOp Op) {
  LazyNode Node;
  Node.Op = LazyOpKind::Stencil;
  Node.A = resolveOperand(Src);
  Node.MaskIdx = MaskIdx;
  Node.Reduce = Op;
  Node.Weighted = true;
  Node.Border = Border;
  Node.BorderConstant = BorderConstant;
  return record(std::move(Node));
}

LazyImage LazyPipeline::windowReduce(ReduceOp Op, LazyImage Src, int MaskIdx,
                                     BorderMode Border, float BorderConstant) {
  LazyNode Node;
  Node.Op = LazyOpKind::Stencil;
  Node.A = resolveOperand(Src);
  Node.MaskIdx = MaskIdx;
  Node.Reduce = Op;
  Node.Weighted = false;
  Node.Border = Border;
  Node.BorderConstant = BorderConstant;
  return record(std::move(Node));
}

LazyImage LazyPipeline::record(LazyNode Node) {
  Nodes.push_back(std::move(Node));
  return {this, static_cast<int>(Nodes.size()) - 1};
}

//===----------------------------------------------------------------------===//
// Lowering
//===----------------------------------------------------------------------===//

namespace {

/// Propagated shape of one node during lowering.
struct NodeShape {
  int Width = 0;
  int Height = 0;
  int Channels = 0;
  bool known() const { return Width > 0 && Height > 0 && Channels > 0; }
};

/// The image-operand node indices of \p Node, in slot order (condition
/// first for selects, matching the lowered input order).
void imageOperands(const LazyNode &Node, std::vector<int> &Out) {
  Out.clear();
  switch (Node.Op) {
  case LazyOpKind::Input:
    break;
  case LazyOpKind::Unary:
  case LazyOpKind::Stencil:
    Out.push_back(Node.A);
    break;
  case LazyOpKind::Binary:
    if (!Node.AIsLit)
      Out.push_back(Node.A);
    if (!Node.BIsLit)
      Out.push_back(Node.B);
    break;
  case LazyOpKind::Select:
    if (!Node.CIsLit)
      Out.push_back(Node.C);
    if (!Node.AIsLit)
      Out.push_back(Node.A);
    if (!Node.BIsLit)
      Out.push_back(Node.B);
    break;
  }
}

/// Lowering context for one Program build (Full or Live). Maps node
/// indices of the selected subset to image ids, mask indices to remapped
/// mask indices, and builds one kernel per computing node.
struct ProgramBuild {
  Program *P = nullptr;
  /// Node index -> image id (SIZE_MAX sentinel encoded as numImages()).
  std::vector<ImageId> NodeImage;
  /// Recorded mask index -> mask index in P (-1 = not yet copied).
  std::vector<int> MaskMap;
};

} // namespace

LazyLowering LazyPipeline::lower(const std::vector<LazyImage> &Outputs) const {
  LazyLowering Result;
  const int NumNodes = static_cast<int>(Nodes.size());

  auto issue = [&Result](const char *Code, std::string Message,
                         std::string Where = {}) {
    Result.Issues.push_back({Code, std::move(Message), std::move(Where)});
  };

  // Display name of node \p Index for diagnostics and the Full program.
  auto displayName = [this](int Index) {
    const LazyNode &Node = Nodes[Index];
    if (!Node.Name.empty())
      return Node.Name;
    std::string Fallback = "v";
    Fallback += std::to_string(Index);
    return Fallback;
  };

  // -- Validate the recorded stream (frontend-level checks the IR cannot
  // represent). Everything else is left for the analyzer.
  std::vector<int> Operands;
  for (int I = 0; I < NumNodes; ++I) {
    const LazyNode &Node = Nodes[I];
    if (Node.Op == LazyOpKind::Input) {
      if (Node.Width <= 0 || Node.Height <= 0 || Node.Channels <= 0)
        issue("KF-P00",
              "input '" + displayName(I) + "' has a non-positive shape " +
                  std::to_string(Node.Width) + "x" +
                  std::to_string(Node.Height) + "x" +
                  std::to_string(Node.Channels),
              displayName(I));
      continue;
    }
    imageOperands(Node, Operands);
    if (Operands.empty()) {
      issue("KF-P00",
            std::string(lazyOpKindName(Node.Op)) + " op '" + displayName(I) +
                "' has no image operand (all-literal ops are not lowerable)",
            displayName(I));
      continue;
    }
    for (int Operand : Operands) {
      if (Operand == INT_MIN) {
        issue("KF-P02",
              "op '" + displayName(I) +
                  "' references a handle from a different pipeline "
                  "(dangling handle)",
              displayName(I));
      } else if (Operand < 0 || Operand >= NumNodes) {
        issue("KF-P02",
              "op '" + displayName(I) + "' references node " +
                  std::to_string(Operand) + " of a pipeline with " +
                  std::to_string(NumNodes) + " ops (dangling handle)",
              displayName(I));
      }
    }
    if (Node.Op == LazyOpKind::Stencil &&
        (Node.MaskIdx < 0 || Node.MaskIdx >= static_cast<int>(Masks.size())))
      issue("KF-P05",
            "stencil op '" + displayName(I) + "' references mask " +
                std::to_string(Node.MaskIdx) + " of a pipeline with " +
                std::to_string(Masks.size()) + " masks",
            displayName(I));
  }

  // -- Validate the requested outputs.
  std::vector<int> OutputNodes;
  for (size_t I = 0; I < Outputs.size(); ++I) {
    const LazyImage &Handle = Outputs[I];
    int Node = Handle.owner() == this ? Handle.node() : INT_MIN;
    if (Node == INT_MIN || Node < 0 || Node >= NumNodes) {
      issue("KF-P02", "requested output " + std::to_string(I) +
                          " is a dangling handle");
      continue;
    }
    OutputNodes.push_back(Node);
  }
  if (OutputNodes.empty() && Result.Issues.empty())
    issue("KF-P00", "materialization requested no outputs");

  if (!Result.Issues.empty())
    return Result; // Not structurally lowerable; reject before the IR.

  // -- Shape propagation (fixpoint; cycles leave shapes unknown and get a
  // 1x1 placeholder so the linter can still run and report KF-P01).
  std::vector<NodeShape> Shapes(NumNodes);
  for (int I = 0; I < NumNodes; ++I)
    if (Nodes[I].Op == LazyOpKind::Input)
      Shapes[I] = {Nodes[I].Width, Nodes[I].Height, Nodes[I].Channels};
  for (int Round = 0; Round < NumNodes; ++Round) {
    bool Changed = false;
    for (int I = 0; I < NumNodes; ++I) {
      if (Shapes[I].known() || Nodes[I].Op == LazyOpKind::Input)
        continue;
      imageOperands(Nodes[I], Operands);
      for (int Operand : Operands) {
        if (Shapes[Operand].known()) {
          Shapes[I] = Shapes[Operand];
          Changed = true;
          break;
        }
      }
    }
    if (!Changed)
      break;
  }
  for (NodeShape &Shape : Shapes)
    if (!Shape.known())
      Shape = {1, 1, 1}; // Placeholder; the cycle itself is linted (KF-P01).

  // -- Liveness: nodes reachable from the requested outputs.
  std::vector<bool> Live(NumNodes, false);
  {
    std::vector<int> Work(OutputNodes.begin(), OutputNodes.end());
    while (!Work.empty()) {
      int Node = Work.back();
      Work.pop_back();
      if (Live[Node])
        continue;
      Live[Node] = true;
      imageOperands(Nodes[Node], Operands);
      for (int Operand : Operands)
        Work.push_back(Operand);
    }
  }

  // -- Emit one Program over a node subset. Canonical naming ("v<pos>",
  // "op<pos>", program name "lazy") erases user-chosen names so the
  // structural hash keys on DAG shape alone; diagnostic naming keeps the
  // user's value names so lint output reads like the client's code.
  auto build = [&](bool Canonical,
                   const std::vector<bool> *Subset) -> ProgramBuild {
    ProgramBuild B;
    std::string ProgName = Canonical ? "lazy" : Name;
    B.P = new Program(std::move(ProgName));
    B.NodeImage.assign(NumNodes, 0);
    B.MaskMap.assign(Masks.size(), -1);

    auto maskIndexIn = [&](int MaskIdx) {
      if (Canonical) {
        // Copy masks on first use so unused masks cannot perturb the hash.
        if (B.MaskMap[MaskIdx] < 0)
          B.MaskMap[MaskIdx] = B.P->addMask(Masks[MaskIdx]);
        return B.MaskMap[MaskIdx];
      }
      return MaskIdx;
    };
    if (!Canonical)
      for (const Mask &MaskValue : Masks)
        B.P->addMask(MaskValue);

    // Images first, in node order, so image ids are deterministic.
    int Position = 0;
    for (int I = 0; I < NumNodes; ++I) {
      if (Subset && !(*Subset)[I])
        continue;
      std::string ImageName;
      if (Canonical) {
        ImageName = "v";
        ImageName += std::to_string(Position);
      } else {
        ImageName = displayName(I);
      }
      B.NodeImage[I] = B.P->addImage(std::move(ImageName), Shapes[I].Width,
                                     Shapes[I].Height, Shapes[I].Channels);
      ++Position;
    }

    // One kernel per computing node.
    ExprContext &Ctx = B.P->context();
    Position = 0;
    for (int I = 0; I < NumNodes; ++I) {
      if (Subset && !(*Subset)[I])
        continue;
      int Pos = Position++;
      const LazyNode &Node = Nodes[I];
      if (Node.Op == LazyOpKind::Input)
        continue;

      Kernel K;
      if (Canonical) {
        K.Name = "op";
        K.Name += std::to_string(Pos);
      } else {
        K.Name = "op:" + displayName(I);
      }
      K.Output = B.NodeImage[I];

      // Map distinct image operands to input slots (reused slots for
      // repeated operands, e.g. mul(x, x)).
      imageOperands(Node, Operands);
      auto inputSlot = [&](int Operand) {
        ImageId Id = B.NodeImage[Operand];
        for (size_t S = 0; S < K.Inputs.size(); ++S)
          if (K.Inputs[S] == Id)
            return static_cast<int>(S);
        K.Inputs.push_back(Id);
        return static_cast<int>(K.Inputs.size()) - 1;
      };
      auto operandExpr = [&](int Operand, bool IsLit, float Lit) {
        return IsLit ? Ctx.floatConst(Lit) : Ctx.inputAt(inputSlot(Operand));
      };

      switch (Node.Op) {
      case LazyOpKind::Input:
        break;
      case LazyOpKind::Binary:
        K.Kind = OperatorKind::Point;
        K.Body = Ctx.binary(Node.Bin,
                            operandExpr(Node.A, Node.AIsLit, Node.LitA),
                            operandExpr(Node.B, Node.BIsLit, Node.LitB));
        break;
      case LazyOpKind::Unary:
        // Unary (like stencil) operands are always images; a literal-only
        // unary was already rejected as KF-P00/KF-P02 above.
        K.Kind = OperatorKind::Point;
        K.Body = Ctx.unary(Node.Un, Ctx.inputAt(inputSlot(Node.A)));
        break;
      case LazyOpKind::Select:
        K.Kind = OperatorKind::Point;
        K.Body = Ctx.select(operandExpr(Node.C, Node.CIsLit, Node.LitC),
                            operandExpr(Node.A, Node.AIsLit, Node.LitA),
                            operandExpr(Node.B, Node.BIsLit, Node.LitB));
        break;
      case LazyOpKind::Stencil: {
        K.Kind = OperatorKind::Local;
        K.Border = Node.Border;
        K.BorderConstant = Node.BorderConstant;
        int Slot = inputSlot(Node.A);
        const Expr *Element = Ctx.stencilInput(Slot);
        if (Node.Weighted)
          Element = Ctx.mul(Ctx.maskValue(), Element);
        // A negative recorded mask index would trip the arena's assert;
        // such nodes were already rejected above (KF-P05), but stay
        // defensive: clamp to 0 so lowering remains total.
        K.Body = Ctx.stencil(maskIndexIn(std::max(Node.MaskIdx, 0)),
                             Node.Reduce, Element);
        break;
      }
      }
      B.P->addKernel(std::move(K));
    }
    return B;
  };

  // Full program: every node, user-facing names -- the lint target.
  ProgramBuild FullBuild = build(/*Canonical=*/false, /*Subset=*/nullptr);
  Result.Full.reset(FullBuild.P);

  // Live program: pruned + canonical -- the execution/cache-key program.
  ProgramBuild LiveBuild = build(/*Canonical=*/true, &Live);
  Result.Live.reset(LiveBuild.P);

  // Frame-filling map: user input name -> live image id.
  for (int I = 0; I < NumNodes; ++I)
    if (Live[I] && Nodes[I].Op == LazyOpKind::Input)
      Result.LiveInputs.emplace_back(displayName(I), LiveBuild.NodeImage[I]);

  // Requested outputs must survive as materialized buffers. An output that
  // is itself an input, or that other live nodes consume (and fusion would
  // therefore bury inside a block as an eliminated intermediate), gets an
  // identity point kernel writing a dedicated terminal image.
  std::vector<int> ConsumerCount(NumNodes, 0);
  for (int I = 0; I < NumNodes; ++I) {
    if (!Live[I])
      continue;
    imageOperands(Nodes[I], Operands);
    for (int Operand : Operands)
      ++ConsumerCount[Operand];
  }
  int ExportIndex = 0;
  std::vector<ImageId> ExportOf(NumNodes, 0);
  std::vector<bool> Exported(NumNodes, false);
  for (int Node : OutputNodes) {
    bool NeedsExport =
        Nodes[Node].Op == LazyOpKind::Input || ConsumerCount[Node] > 0;
    if (!NeedsExport) {
      Result.LiveOutputs.push_back(LiveBuild.NodeImage[Node]);
      continue;
    }
    if (!Exported[Node]) {
      ExprContext &Ctx = Result.Live->context();
      std::string OutName = "o";
      OutName += std::to_string(ExportIndex++);
      ImageId Out =
          Result.Live->addImage(std::move(OutName), Shapes[Node].Width,
                                Shapes[Node].Height, Shapes[Node].Channels);
      Kernel Export;
      Export.Name = "out";
      Export.Name += std::to_string(Out);
      Export.Kind = OperatorKind::Point;
      Export.Inputs = {LiveBuild.NodeImage[Node]};
      Export.Output = Out;
      Export.Body = Ctx.inputAt(0);
      Result.Live->addKernel(std::move(Export));
      ExportOf[Node] = Out;
      Exported[Node] = true;
    }
    Result.LiveOutputs.push_back(ExportOf[Node]);
  }

  Result.StructuralHash = Result.Live->structuralHash();
  return Result;
}

} // namespace kf
