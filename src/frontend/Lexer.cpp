//===- frontend/Lexer.cpp --------------------------------------------------===//

#include "frontend/Lexer.h"

#include "support/Error.h"

#include <cctype>

using namespace kf;

const char *kf::tokenKindName(TokenKind Kind) {
  switch (Kind) {
  case TokenKind::Ident:
    return "identifier";
  case TokenKind::Number:
    return "number";
  case TokenKind::Arrow:
    return "'->'";
  case TokenKind::LParen:
    return "'('";
  case TokenKind::RParen:
    return "')'";
  case TokenKind::LBrack:
    return "'['";
  case TokenKind::RBrack:
    return "']'";
  case TokenKind::LBrace:
    return "'{'";
  case TokenKind::RBrace:
    return "'}'";
  case TokenKind::Comma:
    return "','";
  case TokenKind::Dot:
    return "'.'";
  case TokenKind::Equals:
    return "'='";
  case TokenKind::Plus:
    return "'+'";
  case TokenKind::Minus:
    return "'-'";
  case TokenKind::Star:
    return "'*'";
  case TokenKind::Slash:
    return "'/'";
  case TokenKind::Less:
    return "'<'";
  case TokenKind::Greater:
    return "'>'";
  case TokenKind::EndOfFile:
    return "end of file";
  }
  KF_UNREACHABLE("unknown token kind");
}

std::vector<Token> kf::lexPipelineText(const std::string &Source,
                                       std::vector<std::string> &Errors) {
  std::vector<Token> Tokens;
  unsigned Line = 1;
  size_t Pos = 0;
  size_t End = Source.size();

  auto push = [&](TokenKind Kind, std::string Text) {
    Tokens.push_back(Token{Kind, std::move(Text), Line});
  };

  while (Pos < End) {
    char Ch = Source[Pos];
    if (Ch == '\n') {
      ++Line;
      ++Pos;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(Ch))) {
      ++Pos;
      continue;
    }
    if (Ch == '#') {
      while (Pos < End && Source[Pos] != '\n')
        ++Pos;
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(Ch)) || Ch == '_') {
      size_t Start = Pos;
      while (Pos < End && (std::isalnum(static_cast<unsigned char>(
                               Source[Pos])) ||
                           Source[Pos] == '_'))
        ++Pos;
      push(TokenKind::Ident, Source.substr(Start, Pos - Start));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(Ch))) {
      size_t Start = Pos;
      bool SeenDot = false;
      bool SeenExp = false;
      while (Pos < End) {
        char C = Source[Pos];
        if (std::isdigit(static_cast<unsigned char>(C))) {
          ++Pos;
        } else if (C == '.' && !SeenDot && !SeenExp) {
          SeenDot = true;
          ++Pos;
        } else if ((C == 'e' || C == 'E') && !SeenExp) {
          SeenExp = true;
          ++Pos;
          if (Pos < End && (Source[Pos] == '+' || Source[Pos] == '-'))
            ++Pos;
        } else {
          break;
        }
      }
      push(TokenKind::Number, Source.substr(Start, Pos - Start));
      continue;
    }
    if (Ch == '-' && Pos + 1 < End && Source[Pos + 1] == '>') {
      push(TokenKind::Arrow, "->");
      Pos += 2;
      continue;
    }
    TokenKind Kind;
    switch (Ch) {
    case '(':
      Kind = TokenKind::LParen;
      break;
    case ')':
      Kind = TokenKind::RParen;
      break;
    case '[':
      Kind = TokenKind::LBrack;
      break;
    case ']':
      Kind = TokenKind::RBrack;
      break;
    case '{':
      Kind = TokenKind::LBrace;
      break;
    case '}':
      Kind = TokenKind::RBrace;
      break;
    case ',':
      Kind = TokenKind::Comma;
      break;
    case '.':
      Kind = TokenKind::Dot;
      break;
    case '=':
      Kind = TokenKind::Equals;
      break;
    case '+':
      Kind = TokenKind::Plus;
      break;
    case '-':
      Kind = TokenKind::Minus;
      break;
    case '*':
      Kind = TokenKind::Star;
      break;
    case '/':
      Kind = TokenKind::Slash;
      break;
    case '<':
      Kind = TokenKind::Less;
      break;
    case '>':
      Kind = TokenKind::Greater;
      break;
    default:
      Errors.push_back("line " + std::to_string(Line) +
                       ": unexpected character '" + std::string(1, Ch) +
                       "'");
      ++Pos;
      continue;
    }
    push(Kind, std::string(1, Ch));
    ++Pos;
  }
  push(TokenKind::EndOfFile, "");
  return Tokens;
}
