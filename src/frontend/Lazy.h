//===- frontend/Lazy.h - Record-and-fuse lazy frontend ----------*- C++ -*-===//
///
/// \file
/// The lazy-evaluation frontend for dynamically built pipelines
/// (docs/FRONTEND.md): clients issue image ops imperatively through small
/// LazyImage value handles, a LazyPipeline accumulates the operation DAG
/// without executing anything, and materialization (sim/LazyRuntime.h)
/// lowers the recorded DAG to the Program IR, runs the full fusion +
/// static-analysis gate, and executes through the session machinery.
/// "Fusion of Array Operations at Runtime" (Kristensen et al.) is the
/// model: record cheap, fuse at materialization, amortize by caching the
/// compiled result under the DAG's structural shape.
///
/// Recording is total: no op ever fails at record time. Malformed
/// recordings -- dangling handles, shape mismatches, cyclic raw node
/// streams, bad masks -- lower to issues and IR the static analyzer
/// rejects with stable KF-* diagnostics at materialization; lazy programs
/// are untrusted input and must never crash the process.
///
/// This layer depends only on the IR. The gate and the executor live in
/// sim/LazyRuntime.h; the op-per-line script loader (`kfc --lazy`) in
/// frontend/LazyScript.h.
///
//===----------------------------------------------------------------------===//

#ifndef KF_FRONTEND_LAZY_H
#define KF_FRONTEND_LAZY_H

#include "ir/Program.h"

#include <memory>
#include <string>
#include <vector>

namespace kf {

class LazyPipeline;

/// A value handle into a LazyPipeline's recorded DAG. Cheap to copy;
/// valid only against the pipeline that created it (a handle used with a
/// different pipeline is a *dangling handle* and is rejected with KF-P02
/// at materialization, never dereferenced).
class LazyImage {
public:
  LazyImage() = default;

  bool valid() const { return Owner != nullptr && Node >= 0; }
  int node() const { return Node; }
  const LazyPipeline *owner() const { return Owner; }

private:
  friend class LazyPipeline;
  LazyImage(const LazyPipeline *OwnerIn, int NodeIn)
      : Owner(OwnerIn), Node(NodeIn) {}

  const LazyPipeline *Owner = nullptr;
  int Node = -1;
};

/// Discriminator of one recorded operation.
enum class LazyOpKind : uint8_t {
  Input,   ///< External input image (name + shape); no computation.
  Binary,  ///< Elementwise two-operand op (operands: A, B).
  Unary,   ///< Elementwise one-operand op (operand: A).
  Select,  ///< Elementwise Cond != 0 ? A : B (operands: C, A, B).
  Stencil, ///< Window reduction over a mask (operand: A).
};

/// Printable op-kind name ("input", "binary", ...).
const char *lazyOpKindName(LazyOpKind Kind);

/// One recorded node of the lazy DAG. Operand slots hold node indices
/// into the owning pipeline (negative = unset / literal); the raw
/// record() entry point accepts arbitrary indices -- out-of-range and
/// cyclic references are representable by design and rejected by the
/// analyzer gate, not by the recorder.
struct LazyNode {
  LazyOpKind Op = LazyOpKind::Input;

  /// Display name: the user-facing input/value name used in *diagnostic*
  /// lowering. Execution lowering canonicalizes names away so the plan
  /// key depends only on the DAG shape (see LazyPipeline::lower).
  std::string Name;

  // Input shape (Input nodes only).
  int Width = 0;
  int Height = 0;
  int Channels = 1;

  // Operand slots. A/B are the binary (or unary/stencil: A) operands,
  // C the select condition. Negative index + *IsLit selects the literal.
  int A = -1, B = -1, C = -1;
  float LitA = 0.0f, LitB = 0.0f, LitC = 0.0f;
  bool AIsLit = false, BIsLit = false, CIsLit = false;

  BinOp Bin = BinOp::Add;
  UnOp Un = UnOp::Neg;

  // Stencil nodes: the window, its combine op, and border handling.
  // Weighted stencils compute reduce(mv * src[]) (convolution under
  // Sum); unweighted ones reduce the raw window pixels (erode/dilate
  // under Min/Max).
  ReduceOp Reduce = ReduceOp::Sum;
  bool Weighted = true;
  int MaskIdx = -1;
  BorderMode Border = BorderMode::Clamp;
  float BorderConstant = 0.0f;
};

/// One problem found while recording or lowering a lazy DAG -- before the
/// static analyzer can see a Program. Carries the same stable KF-* code
/// vocabulary the analyzer uses (docs/ANALYSIS.md):
///   KF-P00  unparsable script line / op with no image operand
///   KF-P02  dangling handle (foreign or out-of-range node reference)
///   KF-P03  value redefinition in a script
///   KF-P05  stencil referencing an undeclared mask
struct LazyIssue {
  std::string Code;    ///< Stable diagnostic code ("KF-P00", ...).
  std::string Message; ///< Human-readable description.
  std::string Where;   ///< Value/op name or script location, if any.
};

/// The lowering of a recorded DAG to Program IR. `Full` covers every
/// recorded node under user-facing names -- the lint target, so
/// diagnostics name the values the client wrote. `Live` is the pruned
/// execution program: only nodes reachable from the requested outputs,
/// images/kernels/masks renumbered and renamed canonically so two
/// independently recorded DAGs of the same *shape* lower to structurally
/// identical programs -- Live->structuralHash() is the plan-cache key
/// that makes the second tenant with the same pipeline shape hit warm.
struct LazyLowering {
  std::unique_ptr<Program> Full;
  std::unique_ptr<Program> Live;
  std::vector<LazyIssue> Issues; ///< Frontend-level problems (reject when non-empty).

  /// User input name -> Live image id (what a frame must fill).
  std::vector<std::pair<std::string, ImageId>> LiveInputs;
  /// Live image id of each requested output, in request order.
  std::vector<ImageId> LiveOutputs;
  /// Live->structuralHash(), 0 when lowering failed.
  uint64_t StructuralHash = 0;

  bool recordOk() const { return Issues.empty() && Live != nullptr; }
};

/// Records an operation DAG without executing anything. All record entry
/// points are total -- malformed input surfaces at materialization as
/// KF-* diagnostics, never as a crash or abort.
class LazyPipeline {
public:
  explicit LazyPipeline(std::string NameIn = "lazy")
      : Name(std::move(NameIn)) {}

  const std::string &name() const { return Name; }
  size_t numOps() const { return Nodes.size(); }
  size_t numMasks() const { return Masks.size(); }
  const LazyNode &op(size_t Index) const { return Nodes[Index]; }
  const Mask &mask(size_t Index) const { return Masks[Index]; }

  /// Declares an external input image. Non-positive extents are recorded
  /// as-is and rejected at materialization (KF-P00).
  LazyImage input(std::string InputName, int Width, int Height,
                  int Channels = 1);

  /// Declares a mask. Tolerant: extents and weight counts are recorded
  /// verbatim (no constructor asserts) and validated by the analyzer
  /// (KF-P04). Returns the mask index for convolve/windowReduce.
  int addMask(int Width, int Height, std::vector<float> Weights);

  // -- Point operators (elementwise; mirror the registry's point kernels).
  LazyImage binary(BinOp Op, LazyImage A, LazyImage B);
  LazyImage binary(BinOp Op, LazyImage A, float B);
  LazyImage binary(BinOp Op, float A, LazyImage B);
  LazyImage unary(UnOp Op, LazyImage A);
  LazyImage select(LazyImage Cond, LazyImage TrueValue, LazyImage FalseValue);

  LazyImage add(LazyImage A, LazyImage B) { return binary(BinOp::Add, A, B); }
  LazyImage sub(LazyImage A, LazyImage B) { return binary(BinOp::Sub, A, B); }
  LazyImage mul(LazyImage A, LazyImage B) { return binary(BinOp::Mul, A, B); }
  LazyImage div(LazyImage A, LazyImage B) { return binary(BinOp::Div, A, B); }
  LazyImage mul(LazyImage A, float B) { return binary(BinOp::Mul, A, B); }
  LazyImage add(LazyImage A, float B) { return binary(BinOp::Add, A, B); }

  // -- Local operators (window ops; mirror the registry's local kernels).

  /// Convolution: reduce(mv * src[]) over \p MaskIdx with \p Op (Sum
  /// yields the classic convolution).
  LazyImage convolve(LazyImage Src, int MaskIdx,
                     BorderMode Border = BorderMode::Clamp,
                     float BorderConstant = 0.0f, ReduceOp Op = ReduceOp::Sum);

  /// Unweighted window reduction of the raw pixels (Min = erode,
  /// Max = dilate); the mask only defines the window extent.
  LazyImage windowReduce(ReduceOp Op, LazyImage Src, int MaskIdx,
                         BorderMode Border = BorderMode::Clamp,
                         float BorderConstant = 0.0f);

  /// Raw record entry: appends \p Node verbatim and returns its handle.
  /// The untrusted back door the script frontend (and the malformed-DAG
  /// tests) build on -- operand indices are NOT range-checked here, so
  /// dangling references and cycles are representable; the gate rejects
  /// them with exact KF-P codes.
  LazyImage record(LazyNode Node);

  /// An (unchecked) handle to node \p NodeIndex of this pipeline; the
  /// index may be out of range (a deliberately dangling handle).
  LazyImage handleAt(int NodeIndex) const { return {this, NodeIndex}; }

  /// Lowers the recorded DAG for the requested \p Outputs. Never fails
  /// hard: frontend-level problems land in LazyLowering::Issues and
  /// anything structurally lowerable is lowered for the analyzer to
  /// judge. See LazyLowering for the Full/Live split.
  LazyLowering lower(const std::vector<LazyImage> &Outputs) const;

private:
  /// Resolves an operand handle to a node index for this pipeline;
  /// foreign handles map to a dangling (out-of-range) index so the
  /// lowering diagnoses them instead of reading another DAG's nodes.
  int resolveOperand(const LazyImage &Handle);

  std::string Name;
  std::vector<LazyNode> Nodes;
  std::vector<Mask> Masks;
};

} // namespace kf

#endif // KF_FRONTEND_LAZY_H
