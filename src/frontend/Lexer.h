//===- frontend/Lexer.h - Tokenizer for the pipeline format -----*- C++ -*-===//
///
/// \file
/// Tokenizer for the textual pipeline format (.kfp) the frontend parses.
/// The format describes images, masks, and kernels with expression bodies:
///
///   program blur2
///   image in 64 48
///   image mid 64 48
///   image out 64 48
///   mask g 3 3 [0.0625 0.125 0.0625 0.125 0.25 0.125 0.0625 0.125 0.0625]
///   local kernel conv0(in) -> mid border clamp {
///     out = sum(g, mv * in[])
///   }
///   local kernel conv1(mid) -> out border clamp {
///     out = sum(g, mv * mid[])
///   }
///
/// Tokens carry 1-based line numbers for diagnostics.
///
//===----------------------------------------------------------------------===//

#ifndef KF_FRONTEND_LEXER_H
#define KF_FRONTEND_LEXER_H

#include <string>
#include <vector>

namespace kf {

/// Token categories of the pipeline format.
enum class TokenKind : uint8_t {
  Ident,   ///< Identifiers and keywords.
  Number,  ///< Unsigned numeric literal (sign is a separate token).
  Arrow,   ///< "->"
  LParen,  ///< "("
  RParen,  ///< ")"
  LBrack,  ///< "["
  RBrack,  ///< "]"
  LBrace,  ///< "{"
  RBrace,  ///< "}"
  Comma,   ///< ","
  Dot,     ///< "."
  Equals,  ///< "="
  Plus,    ///< "+"
  Minus,   ///< "-"
  Star,    ///< "*"
  Slash,   ///< "/"
  Less,    ///< "<"
  Greater, ///< ">"
  EndOfFile,
};

/// One lexed token.
struct Token {
  TokenKind Kind = TokenKind::EndOfFile;
  std::string Text;
  unsigned Line = 0;
};

/// Printable token-kind name for diagnostics.
const char *tokenKindName(TokenKind Kind);

/// Tokenizes \p Source. '#' starts a comment to end of line. On a lexical
/// error a diagnostic is appended to \p Errors and lexing continues after
/// the offending character. The token stream always ends with EndOfFile.
std::vector<Token> lexPipelineText(const std::string &Source,
                                   std::vector<std::string> &Errors);

} // namespace kf

#endif // KF_FRONTEND_LEXER_H
