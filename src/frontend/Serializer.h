//===- frontend/Serializer.h - Program -> .kfp text -------------*- C++ -*-===//
///
/// \file
/// Serializes a Program back into the textual pipeline format the parser
/// reads, such that parse(serialize(P)) reproduces the program exactly
/// (structure, bodies, and float constants -- weights and literals print
/// with enough digits to round-trip). Masks are named m0, m1, ...;
/// image and kernel names must already be valid identifiers (all bundled
/// pipelines are).
///
//===----------------------------------------------------------------------===//

#ifndef KF_FRONTEND_SERIALIZER_H
#define KF_FRONTEND_SERIALIZER_H

#include "ir/Program.h"

#include <string>

namespace kf {

/// Renders \p P in the .kfp pipeline format.
std::string serializeProgram(const Program &P);

/// Renders one expression in the .kfp grammar. \p InputNames maps kernel
/// input indices to image names.
std::string serializeExpr(const Expr *E,
                          const std::vector<std::string> &InputNames);

} // namespace kf

#endif // KF_FRONTEND_SERIALIZER_H
