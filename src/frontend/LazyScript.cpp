//===- frontend/LazyScript.cpp - Op-per-line lazy builder scripts ---------===//

#include "frontend/LazyScript.h"

#include <cerrno>
#include <climits>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>

namespace kf {

std::vector<LazyImage> LazyScriptResult::outputs() const {
  std::vector<LazyImage> Handles;
  if (!Pipeline)
    return Handles;
  Handles.reserve(OutputNodes.size());
  for (int Node : OutputNodes)
    Handles.push_back(Pipeline->handleAt(Node));
  return Handles;
}

namespace {

/// Splits one line into whitespace-separated tokens; '#' starts a comment.
std::vector<std::string> tokenize(const std::string &Line) {
  std::vector<std::string> Tokens;
  std::string Current;
  for (char C : Line) {
    if (C == '#')
      break;
    if (C == ' ' || C == '\t' || C == '\r') {
      if (!Current.empty())
        Tokens.push_back(std::move(Current));
      Current.clear();
    } else {
      Current.push_back(C);
    }
  }
  if (!Current.empty())
    Tokens.push_back(std::move(Current));
  return Tokens;
}

/// Full-token float parse ("0.25", "-1e3"); rejects trailing garbage and
/// out-of-range magnitudes.
bool parseFloatToken(const std::string &Token, float &Out) {
  if (Token.empty())
    return false;
  errno = 0;
  char *End = nullptr;
  float Value = std::strtof(Token.c_str(), &End);
  if (End != Token.c_str() + Token.size())
    return false;
  if (errno == ERANGE && std::abs(Value) == HUGE_VALF)
    return false;
  Out = Value;
  return true;
}

/// Full-token non-negative int parse for shape fields.
bool parseIntToken(const std::string &Token, int &Out) {
  if (Token.empty())
    return false;
  errno = 0;
  char *End = nullptr;
  long Value = std::strtol(Token.c_str(), &End, 10);
  if (End != Token.c_str() + Token.size())
    return false;
  if (errno == ERANGE || Value < INT_MIN || Value > INT_MAX)
    return false;
  Out = static_cast<int>(Value);
  return true;
}

bool parseBorderToken(const std::string &Token, BorderMode &Out) {
  if (Token == "clamp")
    Out = BorderMode::Clamp;
  else if (Token == "mirror")
    Out = BorderMode::Mirror;
  else if (Token == "repeat")
    Out = BorderMode::Repeat;
  else if (Token == "constant")
    Out = BorderMode::Constant;
  else
    return false;
  return true;
}

struct BinOpName {
  const char *Name;
  BinOp Op;
};
constexpr BinOpName BinOps[] = {
    {"add", BinOp::Add},     {"sub", BinOp::Sub},     {"mul", BinOp::Mul},
    {"div", BinOp::Div},     {"min", BinOp::Min},     {"max", BinOp::Max},
    {"pow", BinOp::Pow},     {"cmplt", BinOp::CmpLT}, {"cmpgt", BinOp::CmpGT},
};

struct UnOpName {
  const char *Name;
  UnOp Op;
};
constexpr UnOpName UnOps[] = {
    {"neg", UnOp::Neg}, {"abs", UnOp::Abs},     {"sqrt", UnOp::Sqrt},
    {"exp", UnOp::Exp}, {"log", UnOp::Log},     {"floor", UnOp::Floor},
};

struct ReduceName {
  const char *Name;
  ReduceOp Op;
};
constexpr ReduceName Reduces[] = {
    {"reduce_sum", ReduceOp::Sum},
    {"reduce_product", ReduceOp::Product},
    {"reduce_min", ReduceOp::Min},
    {"reduce_max", ReduceOp::Max},
};

/// The parser state across the two passes.
struct ScriptParser {
  LazyScriptResult &Result;
  std::map<std::string, int> ValueNodes; ///< value name -> node index
  std::map<std::string, int> MaskIdxs;   ///< mask name -> mask index

  void error(const char *Code, int LineNo, std::string Message) {
    Result.Errors.push_back(
        {Code, std::move(Message), "line " + std::to_string(LineNo)});
  }

  /// Resolves an operand token: float literal or defined value name.
  /// Returns false (after reporting) for undefined names.
  bool resolveOperand(const std::string &Token, int LineNo, bool AllowLiteral,
                      int &NodeOut, bool &IsLitOut, float &LitOut) {
    auto It = ValueNodes.find(Token);
    if (It != ValueNodes.end()) {
      NodeOut = It->second;
      IsLitOut = false;
      return true;
    }
    float Lit = 0.0f;
    if (AllowLiteral && parseFloatToken(Token, Lit)) {
      IsLitOut = true;
      LitOut = Lit;
      NodeOut = -1;
      return true;
    }
    error("KF-P02", LineNo,
          "undefined value '" + Token + "'" +
              (AllowLiteral ? " (not a float literal either)" : ""));
    return false;
  }
};

} // namespace

LazyScriptResult parseLazyScript(const std::string &Text,
                                 const std::string &PipelineName) {
  LazyScriptResult Result;
  Result.Pipeline = std::make_unique<LazyPipeline>(PipelineName);
  ScriptParser P{Result, {}, {}};

  // Split into token lines once; both passes walk this.
  std::vector<std::vector<std::string>> Lines;
  {
    std::istringstream Stream(Text);
    std::string Line;
    while (std::getline(Stream, Line))
      Lines.push_back(tokenize(Line));
  }

  // Pass 1: assign node indices to every defining line, in order. This is
  // what makes forward references (and therefore cycles) expressible --
  // operands resolve to indices before the nodes exist.
  int NextNode = 0;
  for (size_t I = 0; I < Lines.size(); ++I) {
    const std::vector<std::string> &Tokens = Lines[I];
    int LineNo = static_cast<int>(I) + 1;
    if (Tokens.empty() || Tokens[0] == "output" || Tokens[0] == "mask")
      continue;
    std::string DefName;
    if (Tokens[0] == "input") {
      if (Tokens.size() < 2)
        continue; // Reported in pass 2.
      DefName = Tokens[1];
    } else if (Tokens.size() >= 2 && Tokens[1] == "=") {
      DefName = Tokens[0];
    } else {
      continue; // Malformed; reported in pass 2.
    }
    if (P.ValueNodes.count(DefName)) {
      P.error("KF-P03", LineNo, "value '" + DefName + "' redefined");
      continue;
    }
    P.ValueNodes[DefName] = NextNode++;
  }

  // Pass 2: record the nodes. Every defining line accepted by pass 1 must
  // record exactly one node so indices line up; malformed operand lists
  // record a placeholder with dangling operands (the gate rejects the
  // whole script anyway once Errors is non-empty).
  LazyPipeline &LP = *Result.Pipeline;
  std::vector<std::string> OutputNames;
  std::map<std::string, int> Defined; // names already recorded (for KF-P03 skip)
  for (size_t I = 0; I < Lines.size(); ++I) {
    const std::vector<std::string> &Tokens = Lines[I];
    int LineNo = static_cast<int>(I) + 1;
    if (Tokens.empty())
      continue;

    if (Tokens[0] == "output") {
      if (Tokens.size() < 2) {
        P.error("KF-P00", LineNo, "output line names no values");
        continue;
      }
      for (size_t T = 1; T < Tokens.size(); ++T)
        OutputNames.push_back(Tokens[T]);
      continue;
    }

    if (Tokens[0] == "mask") {
      if (Tokens.size() < 5) {
        P.error("KF-P00", LineNo,
                "mask needs a name, extents, and weights: mask NAME W H w...");
        continue;
      }
      if (P.MaskIdxs.count(Tokens[1])) {
        P.error("KF-P03", LineNo, "mask '" + Tokens[1] + "' redefined");
        continue;
      }
      int Width = 0, Height = 0;
      if (!parseIntToken(Tokens[2], Width) ||
          !parseIntToken(Tokens[3], Height)) {
        P.error("KF-P00", LineNo, "mask extents must be integers");
        continue;
      }
      std::vector<float> Weights;
      bool WeightsOk = true;
      for (size_t T = 4; T < Tokens.size(); ++T) {
        float W = 0.0f;
        if (!parseFloatToken(Tokens[T], W)) {
          P.error("KF-P00", LineNo,
                  "mask weight '" + Tokens[T] + "' is not a float");
          WeightsOk = false;
          break;
        }
        Weights.push_back(W);
      }
      if (!WeightsOk)
        continue;
      // Extent/weight-count mismatches are recorded verbatim; the
      // analyzer rejects them with KF-P04 (tolerant recording contract).
      P.MaskIdxs[Tokens[1]] = LP.addMask(Width, Height, std::move(Weights));
      continue;
    }

    if (Tokens[0] == "input") {
      if (Tokens.size() < 4 || Tokens.size() > 5) {
        P.error("KF-P00", LineNo, "input needs: input NAME W H [C]");
        if (Tokens.size() >= 2 && P.ValueNodes.count(Tokens[1]) &&
            !Defined.count(Tokens[1])) {
          // Keep indices aligned with pass 1's assignment.
          Defined[Tokens[1]] = 1;
          LP.input(Tokens[1], 0, 0, 0);
        }
        continue;
      }
      if (Defined.count(Tokens[1]))
        continue; // Redefinition already reported in pass 1.
      Defined[Tokens[1]] = 1;
      int Width = 0, Height = 0, Channels = 1;
      if (!parseIntToken(Tokens[2], Width) ||
          !parseIntToken(Tokens[3], Height) ||
          (Tokens.size() == 5 && !parseIntToken(Tokens[4], Channels))) {
        P.error("KF-P00", LineNo, "input extents must be integers");
        LP.input(Tokens[1], 0, 0, 0); // Keep indices aligned.
        continue;
      }
      LP.input(Tokens[1], Width, Height, Channels);
      continue;
    }

    if (Tokens.size() >= 2 && Tokens[1] == "=") {
      if (Defined.count(Tokens[0]))
        continue; // Redefinition already reported in pass 1.
      if (!P.ValueNodes.count(Tokens[0]))
        continue; // Pass 1 rejected this line.
      Defined[Tokens[0]] = 1;

      LazyNode Node; // Filled per op; recorded exactly once below.
      bool Recognized = false;
      bool OperandsOk = true;
      const std::string &Op = Tokens.size() >= 3 ? Tokens[2] : Tokens[1];

      for (const BinOpName &B : BinOps) {
        if (Op != B.Name)
          continue;
        Recognized = true;
        if (Tokens.size() != 5) {
          P.error("KF-P00", LineNo,
                  std::string(B.Name) + " needs two operands: NAME = " +
                      B.Name + " A B");
          OperandsOk = false;
          break;
        }
        Node.Op = LazyOpKind::Binary;
        Node.Bin = B.Op;
        OperandsOk &= P.resolveOperand(Tokens[3], LineNo, true, Node.A,
                                       Node.AIsLit, Node.LitA);
        OperandsOk &= P.resolveOperand(Tokens[4], LineNo, true, Node.B,
                                       Node.BIsLit, Node.LitB);
        if (Node.AIsLit && Node.BIsLit) {
          P.error("KF-P00", LineNo,
                  "at least one operand of '" + Tokens[0] +
                      "' must be a value (all-literal ops are not images)");
          OperandsOk = false;
        }
        break;
      }

      if (!Recognized) {
        for (const UnOpName &U : UnOps) {
          if (Op != U.Name)
            continue;
          Recognized = true;
          if (Tokens.size() != 4) {
            P.error("KF-P00", LineNo,
                    std::string(U.Name) + " needs one operand: NAME = " +
                        U.Name + " A");
            OperandsOk = false;
            break;
          }
          Node.Op = LazyOpKind::Unary;
          Node.Un = U.Op;
          bool Lit = false;
          float LitValue = 0.0f;
          OperandsOk &=
              P.resolveOperand(Tokens[3], LineNo, false, Node.A, Lit, LitValue);
          break;
        }
      }

      if (!Recognized && Op == "select") {
        Recognized = true;
        if (Tokens.size() != 6) {
          P.error("KF-P00", LineNo, "select needs: NAME = select C A B");
          OperandsOk = false;
        } else {
          Node.Op = LazyOpKind::Select;
          OperandsOk &= P.resolveOperand(Tokens[3], LineNo, true, Node.C,
                                         Node.CIsLit, Node.LitC);
          OperandsOk &= P.resolveOperand(Tokens[4], LineNo, true, Node.A,
                                         Node.AIsLit, Node.LitA);
          OperandsOk &= P.resolveOperand(Tokens[5], LineNo, true, Node.B,
                                         Node.BIsLit, Node.LitB);
          if (Node.CIsLit && Node.AIsLit && Node.BIsLit) {
            P.error("KF-P00", LineNo,
                    "at least one operand of '" + Tokens[0] +
                        "' must be a value");
            OperandsOk = false;
          }
        }
      }

      if (!Recognized) {
        bool IsConv = Op == "conv";
        ReduceOp Reduce = ReduceOp::Sum;
        bool IsReduce = false;
        for (const ReduceName &R : Reduces) {
          if (Op == R.Name) {
            IsReduce = true;
            Reduce = R.Op;
            break;
          }
        }
        if (IsConv || IsReduce) {
          Recognized = true;
          if (Tokens.size() < 5 || Tokens.size() > 7) {
            P.error("KF-P00", LineNo,
                    Op + " needs: NAME = " + Op + " MASK SRC [BORDER [CONST]]");
            OperandsOk = false;
          } else {
            Node.Op = LazyOpKind::Stencil;
            Node.Weighted = IsConv;
            Node.Reduce = IsConv ? ReduceOp::Sum : Reduce;
            auto MaskIt = P.MaskIdxs.find(Tokens[3]);
            if (MaskIt == P.MaskIdxs.end()) {
              P.error("KF-P05", LineNo,
                      "undefined mask '" + Tokens[3] + "'");
              OperandsOk = false;
            } else {
              Node.MaskIdx = MaskIt->second;
            }
            bool Lit = false;
            float LitValue = 0.0f;
            OperandsOk &= P.resolveOperand(Tokens[4], LineNo, false, Node.A,
                                           Lit, LitValue);
            if (Tokens.size() >= 6 &&
                !parseBorderToken(Tokens[5], Node.Border)) {
              P.error("KF-P00", LineNo,
                      "unknown border mode '" + Tokens[5] +
                          "' (clamp|mirror|repeat|constant)");
              OperandsOk = false;
            }
            if (Tokens.size() == 7 &&
                !parseFloatToken(Tokens[6], Node.BorderConstant)) {
              P.error("KF-P00", LineNo,
                      "border constant '" + Tokens[6] + "' is not a float");
              OperandsOk = false;
            }
          }
        }
      }

      if (!Recognized) {
        P.error("KF-P00", LineNo, "unknown op '" + Op + "'");
        OperandsOk = false;
      }
      if (!OperandsOk) {
        // Record a placeholder so pass-1 indices stay aligned; the script
        // is already rejected via Errors.
        Node = LazyNode();
        Node.Op = LazyOpKind::Unary;
        Node.A = -1;
      }
      Node.Name = Tokens[0];
      LP.record(std::move(Node));
      continue;
    }

    P.error("KF-P00", LineNo,
            "unparsable line (expected input/mask/output or NAME = OP ...)");
  }

  // Resolve the requested outputs.
  for (const std::string &OutName : OutputNames) {
    auto It = P.ValueNodes.find(OutName);
    if (It == P.ValueNodes.end()) {
      P.error("KF-P02", 0, "output names undefined value '" + OutName + "'");
      continue;
    }
    Result.OutputNodes.push_back(It->second);
  }
  if (OutputNames.empty() && Result.Errors.empty())
    P.error("KF-P00", 0, "script has no output line");

  return Result;
}

LazyScriptResult parseLazyScriptFile(const std::string &Path) {
  if (Path.empty()) {
    LazyScriptResult Result;
    Result.Errors.push_back(
        {"KF-P00", "empty lazy script path", "--lazy"});
    return Result;
  }
  std::ifstream Stream(Path);
  if (!Stream) {
    LazyScriptResult Result;
    Result.Errors.push_back(
        {"KF-P00", "cannot open lazy script '" + Path + "'", "--lazy"});
    return Result;
  }
  std::ostringstream Buffer;
  Buffer << Stream.rdbuf();
  // Derive the pipeline name from the file stem, matching the .kfp
  // frontend's behavior; the name never reaches the plan key (the live
  // lowering canonicalizes it away).
  std::string Name = Path;
  size_t Slash = Name.find_last_of("/\\");
  if (Slash != std::string::npos)
    Name = Name.substr(Slash + 1);
  size_t Dot = Name.find_last_of('.');
  if (Dot != std::string::npos && Dot > 0)
    Name = Name.substr(0, Dot);
  return parseLazyScript(Buffer.str(), Name.empty() ? "lazy" : Name);
}

} // namespace kf
