//===- pipelines/Enhancement.cpp - WCE image enhancement ----------------------===//
//
// Image enhancement for wireless capsule endoscopy (Suman et al. [24]):
// a geometric-mean filter for de-noising (local) followed by gamma
// correction and a contrast stretch (point kernels). A straight chain
// with no external dependences -- the application where even basic fusion
// achieves most of the estimated benefit in the paper's Table I.
//
//===----------------------------------------------------------------------===//

#include "ir/Verifier.h"
#include "pipelines/Masks.h"
#include "pipelines/Pipelines.h"

using namespace kf;

Program kf::makeEnhancement(int Width, int Height) {
  Program P("enhance");
  ExprContext &C = P.context();

  ImageId In = P.addImage("in", Width, Height);
  ImageId Gm = P.addImage("gm_out", Width, Height);
  ImageId Gam = P.addImage("gamma_out", Width, Height);
  ImageId Out = P.addImage("out", Width, Height);

  int MaskBox = P.addMask(boxMask(3));

  // gm = exp(sum(mask * log(win + eps))): geometric mean of the window.
  {
    Kernel K;
    K.Name = "gmean";
    K.Kind = OperatorKind::Local;
    K.Inputs = {In};
    K.Output = Gm;
    const Expr *Elem = C.mul(
        C.maskValue(),
        C.unary(UnOp::Log,
                C.add(C.stencilInput(0), C.floatConst(1e-6f))));
    K.Body = C.unary(UnOp::Exp, C.stencil(MaskBox, ReduceOp::Sum, Elem));
    K.Border = BorderMode::Clamp;
    P.addKernel(std::move(K));
  }
  // gamma = gm ^ 0.8: gamma correction.
  {
    Kernel K;
    K.Name = "gamma";
    K.Kind = OperatorKind::Point;
    K.Inputs = {Gm};
    K.Output = Gam;
    K.Body = C.binary(BinOp::Pow, C.inputAt(0), C.floatConst(0.8f));
    P.addKernel(std::move(K));
  }
  // out = clamp-free linear stretch a * gamma + b.
  {
    Kernel K;
    K.Name = "stretch";
    K.Kind = OperatorKind::Point;
    K.Inputs = {Gam};
    K.Output = Out;
    K.Body = C.add(C.mul(C.floatConst(1.2f), C.inputAt(0)),
                   C.floatConst(-0.05f));
    P.addKernel(std::move(K));
  }

  verifyProgramOrDie(P);
  return P;
}
