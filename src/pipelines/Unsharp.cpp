//===- pipelines/Unsharp.cpp - Cubic unsharp masking --------------------------===//
//
// Ramponi's cubic unsharp masking [21]: one blurring local kernel followed
// by three point kernels amplifying the high-frequency components. All
// four kernels read the source image -- the Figure 2b "Input" scenario
// that prior work rejected and this paper fuses into a single kernel
// (speedup of up to 3.4 in the paper's Table I).
//
//===----------------------------------------------------------------------===//

#include "ir/Verifier.h"
#include "pipelines/Masks.h"
#include "pipelines/Pipelines.h"

using namespace kf;

Program kf::makeUnsharp(int Width, int Height) {
  Program P("unsharp");
  ExprContext &C = P.context();

  ImageId In = P.addImage("in", Width, Height);
  ImageId Blur = P.addImage("blur_out", Width, Height);
  ImageId Hi = P.addImage("hi_out", Width, Height);
  ImageId Cub = P.addImage("cub_out", Width, Height);
  ImageId Out = P.addImage("out", Width, Height);

  int MaskG = P.addMask(binomial3Normalized());

  // blur = G * in (local).
  {
    Kernel K;
    K.Name = "blur";
    K.Kind = OperatorKind::Local;
    K.Inputs = {In};
    K.Output = Blur;
    K.Body = C.stencil(MaskG, ReduceOp::Sum,
                       C.mul(C.maskValue(), C.stencilInput(0)));
    K.Border = BorderMode::Clamp;
    P.addKernel(std::move(K));
  }
  // hi = in - blur (point, shared input).
  {
    Kernel K;
    K.Name = "hi";
    K.Kind = OperatorKind::Point;
    K.Inputs = {In, Blur};
    K.Output = Hi;
    K.Body = C.sub(C.inputAt(0), C.inputAt(1));
    P.addKernel(std::move(K));
  }
  // cub = hi * in^2: the cubic weighting of the high-pass signal.
  {
    Kernel K;
    K.Name = "cub";
    K.Kind = OperatorKind::Point;
    K.Inputs = {Hi, In};
    K.Output = Cub;
    K.Body = C.mul(C.inputAt(0), C.mul(C.inputAt(1), C.inputAt(1)));
    P.addKernel(std::move(K));
  }
  // out = in + lambda * cub (point, shared input).
  {
    Kernel K;
    K.Name = "sharpen";
    K.Kind = OperatorKind::Point;
    K.Inputs = {In, Cub};
    K.Output = Out;
    K.Body = C.add(C.inputAt(0), C.mul(C.floatConst(1.5f), C.inputAt(1)));
    P.addKernel(std::move(K));
  }

  verifyProgramOrDie(P);
  return P;
}
