//===- pipelines/Synthetic.cpp - Synthetic workloads ----------------------------===//
//
// Synthetic pipelines for the crossover sweep (point-to-local with a
// configurable producer cost) and for randomized property testing and the
// search-strategy ablation (random DAG-shaped pipelines).
//
//===----------------------------------------------------------------------===//

#include "ir/Verifier.h"
#include "pipelines/Masks.h"
#include "pipelines/Pipelines.h"

using namespace kf;

/// A chain of multiply-adds with exactly \p AluOps arithmetic nodes.
static const Expr *aluChain(ExprContext &C, const Expr *Seed, int AluOps) {
  const Expr *Body = Seed;
  for (int Op = 0; Op + 1 < AluOps; Op += 2)
    Body = C.add(C.mul(Body, C.floatConst(1.0009f)), C.floatConst(0.0001f));
  if (AluOps % 2 != 0)
    Body = C.mul(Body, C.floatConst(0.9991f));
  return Body;
}

Program kf::makePointToLocal(int Width, int Height, int ProducerAluOps) {
  Program P("p2l");
  ExprContext &C = P.context();

  ImageId In = P.addImage("in", Width, Height);
  ImageId Mid = P.addImage("mid", Width, Height);
  ImageId Out = P.addImage("out", Width, Height);
  int MaskG = P.addMask(binomial3Normalized());

  Kernel Producer;
  Producer.Name = "producer";
  Producer.Kind = OperatorKind::Point;
  Producer.Inputs = {In};
  Producer.Output = Mid;
  Producer.Body = aluChain(C, C.inputAt(0), ProducerAluOps);
  P.addKernel(std::move(Producer));

  Kernel Consumer;
  Consumer.Name = "consumer";
  Consumer.Kind = OperatorKind::Local;
  Consumer.Inputs = {Mid};
  Consumer.Output = Out;
  Consumer.Body = C.stencil(MaskG, ReduceOp::Sum,
                            C.mul(C.maskValue(), C.stencilInput(0)));
  Consumer.Border = BorderMode::Clamp;
  P.addKernel(std::move(Consumer));

  verifyProgramOrDie(P);
  return P;
}

Program kf::makeRandomPipeline(unsigned NumKernels, double LocalFraction,
                               int Width, int Height, Rng &Generator) {
  Program P("random");
  ExprContext &C = P.context();
  int MaskG = P.addMask(binomial3Normalized());

  std::vector<ImageId> Available;
  Available.push_back(P.addImage("in", Width, Height));

  for (unsigned N = 0; N != NumKernels; ++N) {
    ImageId Out =
        P.addImage("img" + std::to_string(N + 1), Width, Height);
    Kernel K;
    K.Name = "k" + std::to_string(N);
    K.Output = Out;
    bool IsLocal = Generator.nextDouble() < LocalFraction;

    // One or two inputs from earlier images (locals take one).
    ImageId A = Available[Generator.nextBelow(Available.size())];
    if (IsLocal) {
      K.Kind = OperatorKind::Local;
      K.Inputs = {A};
      K.Border = BorderMode::Clamp;
      K.Body = C.stencil(MaskG, ReduceOp::Sum,
                         C.mul(C.maskValue(), C.stencilInput(0)));
    } else {
      K.Kind = OperatorKind::Point;
      bool TwoInputs = Generator.nextDouble() < 0.4;
      if (TwoInputs) {
        ImageId B = Available[Generator.nextBelow(Available.size())];
        if (B != A) {
          K.Inputs = {A, B};
          K.Body = C.add(C.mul(C.inputAt(0), C.floatConst(0.6f)),
                         C.mul(C.inputAt(1), C.floatConst(0.4f)));
        }
      }
      if (K.Inputs.empty()) {
        K.Inputs = {A};
        K.Body = aluChain(C, C.inputAt(0),
                          2 + static_cast<int>(Generator.nextBelow(6)));
      }
    }
    P.addKernel(std::move(K));
    Available.push_back(Out);
  }

  verifyProgramOrDie(P);
  return P;
}
