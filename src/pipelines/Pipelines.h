//===- pipelines/Pipelines.h - The six benchmark applications ---*- C++ -*-===//
///
/// \file
/// Builders for the six image-processing applications of the paper's
/// evaluation (Section V-B), plus small helper pipelines used by the
/// border-fusion experiment and the tests. Each builder returns a verified
/// Program whose kernel DAG matches the application structure the paper
/// describes; bodies are real compute (the interpreter produces the actual
/// filter outputs).
///
//===----------------------------------------------------------------------===//

#ifndef KF_PIPELINES_PIPELINES_H
#define KF_PIPELINES_PIPELINES_H

#include "image/Border.h"
#include "ir/Program.h"
#include "support/Random.h"

#include <functional>

namespace kf {

/// Harris corner detector [15]: nine kernels {dx, dy, sx, sy, sxy, gx, gy,
/// gxy, hc} connected by ten edges -- the running example of the paper's
/// Figure 3.
Program makeHarris(int Width, int Height);

/// Sobel filter [19]: two local derivative kernels plus a point gradient-
/// magnitude kernel. Rejected entirely by basic fusion (shared input),
/// fully fused by the optimized technique.
Program makeSobel(int Width, int Height);

/// Unsharp filter [21]: a blurring local kernel followed by three point
/// kernels amplifying the high-frequency components; all four kernels
/// require the source image (the Figure 2b "Input" scenario).
Program makeUnsharp(int Width, int Height);

/// Shi-Tomasi good-features extractor [20]: the Harris structure with the
/// minimum-eigenvalue corner response.
Program makeShiTomasi(int Width, int Height);

/// WCE image enhancement [24]: geometric-mean filter (local) followed by
/// two point kernels (gamma correction, contrast stretch).
Program makeEnhancement(int Width, int Height);

/// Night filter [22][23]: two expensive a-trous bilateral kernels (3x3,
/// 5x5) and a scotopic tone-mapping point kernel, on RGB images. The
/// compute-bound case: the benefit model declines the local-to-local
/// fusion and only Atrous1+Scoto fuse.
Program makeNight(int Width, int Height);

/// Two chained convolutions with the given border mode; the machinery of
/// the paper's Figure 4 (local-to-local fusion with border handling).
/// Masks are the normalized 3x3 binomial.
Program makeBlurChain(int Width, int Height, BorderMode Border);

/// The exact Figure 4 setup: the paper's 5x5 integer matrix convolved
/// twice with the *unnormalized* binomial mask under clamp borders.
Program makeFigure4Program();

/// A linear chain of \p NumKernels point kernels, each performing
/// \p AluOpsPerKernel arithmetic operations -- the synthetic workload of
/// the compute-boundedness crossover sweep.
Program makePointChain(int Width, int Height, int NumKernels,
                       int AluOpsPerKernel);

/// A point producer with \p ProducerAluOps arithmetic operations feeding a
/// 3x3 convolution: the minimal point-to-local scenario. Sweeping the
/// producer cost exposes the locality/recompute crossover of Eq. 8 (the
/// reason the Night filter barely gains).
Program makePointToLocal(int Width, int Height, int ProducerAluOps);

/// A random image-processing pipeline: \p NumKernels kernels (point and
/// local mixed per \p LocalFraction), each consuming one or two earlier
/// images. Used by the partitioner property tests and the search-strategy
/// ablation benchmark. Deterministic in \p Generator.
Program makeRandomPipeline(unsigned NumKernels, double LocalFraction,
                           int Width, int Height, Rng &Generator);

/// Registry entry for the paper's applications.
struct PipelineSpec {
  std::string Name;
  int Width = 0;
  int Height = 0;
  std::function<Program(int, int)> Builder;

  Program build() const { return Builder(Width, Height); }
};

/// The six applications with the paper's image sizes (2,048 x 2,048 gray;
/// Night: 1,920 x 1,200 RGB), in the paper's table order.
const std::vector<PipelineSpec> &paperPipelines();

/// Finds a pipeline spec by (case-sensitive) name, or nullptr.
const PipelineSpec *findPipeline(const std::string &Name);

} // namespace kf

#endif // KF_PIPELINES_PIPELINES_H
