//===- pipelines/ConvChains.cpp - Convolution chains & synthetic loads --------===//
//
// Helper pipelines: the two-convolution chain behind the paper's Figure 4
// (local-to-local fusion with border handling), the exact Figure 4 setup
// on the paper's 5x5 integer matrix, and a synthetic point-kernel chain
// with a configurable arithmetic load for the compute-boundedness sweep.
//
//===----------------------------------------------------------------------===//

#include "ir/Verifier.h"
#include "pipelines/Masks.h"
#include "pipelines/Pipelines.h"

using namespace kf;

static Program makeConvChainImpl(const char *Name, int Width, int Height,
                                 BorderMode Border, const Mask &MaskIn) {
  Program P(Name);
  ExprContext &C = P.context();

  ImageId In = P.addImage("in", Width, Height);
  ImageId Mid = P.addImage("mid", Width, Height);
  ImageId Out = P.addImage("out", Width, Height);
  int MaskIdx = P.addMask(MaskIn);

  auto addConv = [&](const char *KernelName, ImageId Input, ImageId Output) {
    Kernel K;
    K.Name = KernelName;
    K.Kind = OperatorKind::Local;
    K.Inputs = {Input};
    K.Output = Output;
    K.Body = C.stencil(MaskIdx, ReduceOp::Sum,
                       C.mul(C.maskValue(), C.stencilInput(0)));
    K.Border = Border;
    P.addKernel(std::move(K));
  };
  addConv("conv0", In, Mid);
  addConv("conv1", Mid, Out);

  verifyProgramOrDie(P);
  return P;
}

Program kf::makeBlurChain(int Width, int Height, BorderMode Border) {
  return makeConvChainImpl("blurchain", Width, Height, Border,
                           binomial3Normalized());
}

Program kf::makeFigure4Program() {
  return makeConvChainImpl("figure4", 5, 5, BorderMode::Clamp,
                           binomial3Unnormalized());
}

Program kf::makePointChain(int Width, int Height, int NumKernels,
                           int AluOpsPerKernel) {
  Program P("pointchain");
  ExprContext &C = P.context();

  ImageId Prev = P.addImage("in", Width, Height);
  for (int N = 0; N != NumKernels; ++N) {
    ImageId Next = P.addImage("stage" + std::to_string(N), Width, Height);
    Kernel K;
    K.Name = "point" + std::to_string(N);
    K.Kind = OperatorKind::Point;
    K.Inputs = {Prev};
    K.Output = Next;
    // Chain of multiply-adds: AluOpsPerKernel arithmetic nodes exactly
    // (each iteration adds a multiply and an add).
    const Expr *Body = C.inputAt(0);
    for (int Op = 0; Op + 1 < AluOpsPerKernel; Op += 2)
      Body = C.add(C.mul(Body, C.floatConst(1.0009f)),
                   C.floatConst(0.0001f));
    K.Body = Body;
    P.addKernel(std::move(K));
    Prev = Next;
  }

  verifyProgramOrDie(P);
  return P;
}
