//===- pipelines/Masks.h - Shared convolution masks -------------*- C++ -*-===//
///
/// \file
/// Masks used across the benchmark applications: binomial (Gaussian
/// approximation), Sobel derivative masks, the 5x5 a-trous mask of the
/// Night filter, and uniform box masks.
///
//===----------------------------------------------------------------------===//

#ifndef KF_PIPELINES_MASKS_H
#define KF_PIPELINES_MASKS_H

#include "ir/Kernel.h"

namespace kf {

/// 3x3 binomial mask [1 2 1; 2 4 2; 1 2 1] / 16 (Gaussian approximation).
Mask binomial3Normalized();

/// 3x3 binomial mask with integer weights (unnormalized), the mask of the
/// paper's Figure 4 example.
Mask binomial3Unnormalized();

/// Sobel derivative masks (x and y direction), 1/8 normalization.
Mask sobelX3();
Mask sobelY3();

/// 5x5 a-trous (with holes) mask: the 3x3 binomial spread to distance 2,
/// used by the Night filter's second bilateral stage.
Mask atrous5();

/// Width x Width box mask with weight 1/(Width*Width) each.
Mask boxMask(int Width);

} // namespace kf

#endif // KF_PIPELINES_MASKS_H
