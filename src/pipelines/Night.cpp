//===- pipelines/Night.cpp - Night post-processing filter ----------------------===//
//
// Night rendering filter (Jensen et al. [22]) on RGB images: the a-trous
// algorithm [23] applied twice (3x3, then 5x5 with holes) performs an
// approximate bilateral filtering, followed by a scotopic tone-mapping
// point kernel. The bilateral kernels are very expensive to compute (the
// paper counts 68 ALU operations in the Hipacc implementation); the
// benefit model therefore declines fusing Atrous0 with Atrous1, and only
// the local-to-point pair Atrous1+Scoto fuses -- the compute-bound case
// with a speedup of at most ~1.02.
//
//===----------------------------------------------------------------------===//

#include "ir/Verifier.h"
#include "pipelines/Masks.h"
#include "pipelines/Pipelines.h"

using namespace kf;

/// Builds one a-trous bilateral stage: weights combine the spatial mask
/// with a range kernel exp(-(win-center)^2 / (2 sigma^2)), normalized by
/// the window's total weight.
static const Expr *bilateralBody(ExprContext &C, int MaskIdx, float Sigma) {
  float InvTwoSigmaSq = 1.0f / (2.0f * Sigma * Sigma);
  auto rangeWeight = [&]() {
    const Expr *Diff = C.sub(C.stencilInput(0), C.inputAt(0));
    return C.unary(UnOp::Exp,
                   C.mul(C.floatConst(-InvTwoSigmaSq), C.mul(Diff, Diff)));
  };
  // Weighted sum of window pixels and total weight, each one stencil pass.
  const Expr *Num = C.stencil(
      MaskIdx, ReduceOp::Sum,
      C.mul(C.mul(C.maskValue(), rangeWeight()), C.stencilInput(0)));
  const Expr *Den = C.stencil(MaskIdx, ReduceOp::Sum,
                              C.mul(C.maskValue(), rangeWeight()));
  return C.div(Num, C.add(Den, C.floatConst(1e-6f)));
}

Program kf::makeNight(int Width, int Height) {
  Program P("night");
  ExprContext &C = P.context();

  ImageId In = P.addImage("in", Width, Height, /*Channels=*/3);
  ImageId A0 = P.addImage("atrous0_out", Width, Height, 3);
  ImageId A1 = P.addImage("atrous1_out", Width, Height, 3);
  ImageId Out = P.addImage("out", Width, Height, 3);

  int Mask3 = P.addMask(binomial3Normalized());
  int Mask5 = P.addMask(atrous5());

  {
    Kernel K;
    K.Name = "atrous0";
    K.Kind = OperatorKind::Local;
    K.Inputs = {In};
    K.Output = A0;
    K.Body = bilateralBody(C, Mask3, 0.1f);
    K.Border = BorderMode::Clamp;
    P.addKernel(std::move(K));
  }
  {
    Kernel K;
    K.Name = "atrous1";
    K.Kind = OperatorKind::Local;
    K.Inputs = {A0};
    K.Output = A1;
    K.Body = bilateralBody(C, Mask5, 0.2f);
    K.Border = BorderMode::Clamp;
    P.addKernel(std::move(K));
  }
  // Scotopic tone mapping: blend each channel toward the blue-shifted
  // night luminance with a mesopic weight derived from the luminance.
  {
    Kernel K;
    K.Name = "scoto";
    K.Kind = OperatorKind::Point;
    K.Inputs = {A1};
    K.Output = Out;
    const Expr *Lum =
        C.add(C.add(C.mul(C.floatConst(0.30f), C.inputAt(0, 0, 0, 0)),
                    C.mul(C.floatConst(0.59f), C.inputAt(0, 0, 0, 1))),
              C.mul(C.floatConst(0.11f), C.inputAt(0, 0, 0, 2)));
    // Scotopic luminance response (tone curve with log/exp shaping).
    const Expr *V = C.div(
        C.unary(UnOp::Log,
                C.add(C.floatConst(1.0f),
                      C.mul(C.floatConst(25.0f), Lum))),
        C.unary(UnOp::Log, C.floatConst(26.0f)));
    const Expr *BlueShift = C.mul(C.floatConst(1.05f), V);
    // Mesopic blend weight w = 1 / (1 + (4*Y)^2).
    const Expr *FourY = C.mul(C.floatConst(4.0f), Lum);
    const Expr *W =
        C.div(C.floatConst(1.0f),
              C.add(C.floatConst(1.0f), C.mul(FourY, FourY)));
    // out_c = w * blueshift + (1 - w) * in_c, gamma-shaped.
    const Expr *Blend =
        C.add(C.mul(W, BlueShift),
              C.mul(C.sub(C.floatConst(1.0f), W), C.inputAt(0)));
    K.Body = C.binary(BinOp::Pow, C.binary(BinOp::Max, Blend,
                                           C.floatConst(0.0f)),
                      C.floatConst(0.9f));
    P.addKernel(std::move(K));
  }

  verifyProgramOrDie(P);
  return P;
}
