//===- pipelines/Masks.cpp --------------------------------------------------===//

#include "pipelines/Masks.h"

using namespace kf;

Mask kf::binomial3Normalized() {
  const float S = 1.0f / 16.0f;
  return Mask(3, 3,
              {1 * S, 2 * S, 1 * S, 2 * S, 4 * S, 2 * S, 1 * S, 2 * S,
               1 * S});
}

Mask kf::binomial3Unnormalized() {
  return Mask(3, 3, {1, 2, 1, 2, 4, 2, 1, 2, 1});
}

Mask kf::sobelX3() {
  const float S = 1.0f / 8.0f;
  return Mask(3, 3,
              {-1 * S, 0, 1 * S, -2 * S, 0, 2 * S, -1 * S, 0, 1 * S});
}

Mask kf::sobelY3() {
  const float S = 1.0f / 8.0f;
  return Mask(3, 3,
              {-1 * S, -2 * S, -1 * S, 0, 0, 0, 1 * S, 2 * S, 1 * S});
}

Mask kf::atrous5() {
  // Binomial coefficients spread with holes (a-trous wavelet, level 1).
  const float S = 1.0f / 16.0f;
  std::vector<float> W(25, 0.0f);
  const float Base[3] = {1 * S, 2 * S, 1 * S};
  for (int Y = 0; Y != 3; ++Y)
    for (int X = 0; X != 3; ++X)
      W[static_cast<size_t>(Y * 2) * 5 + (X * 2)] = Base[Y] * Base[X] * 16.0f *
                                                    S;
  return Mask(5, 5, std::move(W));
}

Mask kf::boxMask(int Width) {
  float Value = 1.0f / static_cast<float>(Width * Width);
  return Mask::uniform(Width, Width, Value);
}
