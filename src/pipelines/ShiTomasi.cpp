//===- pipelines/ShiTomasi.cpp - Good features to track -----------------------===//
//
// Shi-Tomasi feature extractor [20]: identical structure to the Harris
// pipeline (both compute the Hermitian structure matrix), but the corner
// response is the minimum eigenvalue instead of the determinant/trace
// combination.
//
//===----------------------------------------------------------------------===//

#include "ir/Verifier.h"
#include "pipelines/Masks.h"
#include "pipelines/Pipelines.h"

using namespace kf;

Program kf::makeShiTomasi(int Width, int Height) {
  Program P("shitomasi");
  ExprContext &C = P.context();

  ImageId In = P.addImage("in", Width, Height);
  ImageId Dx = P.addImage("dx_out", Width, Height);
  ImageId Dy = P.addImage("dy_out", Width, Height);
  ImageId Sx = P.addImage("sx_out", Width, Height);
  ImageId Sy = P.addImage("sy_out", Width, Height);
  ImageId Sxy = P.addImage("sxy_out", Width, Height);
  ImageId Gx = P.addImage("gx_out", Width, Height);
  ImageId Gy = P.addImage("gy_out", Width, Height);
  ImageId Gxy = P.addImage("gxy_out", Width, Height);
  ImageId St = P.addImage("st_out", Width, Height);

  int MaskX = P.addMask(sobelX3());
  int MaskY = P.addMask(sobelY3());
  int MaskG = P.addMask(binomial3Normalized());

  auto addLocal = [&](const char *Name, ImageId Input, ImageId Output,
                      int MaskIdx) {
    Kernel K;
    K.Name = Name;
    K.Kind = OperatorKind::Local;
    K.Inputs = {Input};
    K.Output = Output;
    K.Body = C.stencil(MaskIdx, ReduceOp::Sum,
                       C.mul(C.maskValue(), C.stencilInput(0)));
    K.Border = BorderMode::Clamp;
    P.addKernel(std::move(K));
  };
  auto addPoint = [&](const char *Name, std::vector<ImageId> Inputs,
                      ImageId Output, const Expr *Body) {
    Kernel K;
    K.Name = Name;
    K.Kind = OperatorKind::Point;
    K.Inputs = std::move(Inputs);
    K.Output = Output;
    K.Body = Body;
    P.addKernel(std::move(K));
  };

  addLocal("dx", In, Dx, MaskX);
  addLocal("dy", In, Dy, MaskY);
  addPoint("sx", {Dx}, Sx, C.mul(C.inputAt(0), C.inputAt(0)));
  addPoint("sy", {Dy}, Sy, C.mul(C.inputAt(0), C.inputAt(0)));
  addPoint("sxy", {Dx, Dy}, Sxy, C.mul(C.inputAt(0), C.inputAt(1)));
  addLocal("gx", Sx, Gx, MaskG);
  addLocal("gy", Sy, Gy, MaskG);
  addLocal("gxy", Sxy, Gxy, MaskG);

  // st = ((gx + gy) - sqrt((gx - gy)^2 + 4*gxy^2)) / 2: the smaller
  // eigenvalue of the structure matrix.
  const Expr *TraceE = C.add(C.inputAt(0), C.inputAt(1));
  const Expr *DiffE = C.sub(C.inputAt(0), C.inputAt(1));
  const Expr *Disc =
      C.add(C.mul(DiffE, DiffE),
            C.mul(C.floatConst(4.0f), C.mul(C.inputAt(2), C.inputAt(2))));
  addPoint("st", {Gx, Gy, Gxy}, St,
           C.mul(C.floatConst(0.5f),
                 C.sub(TraceE, C.unary(UnOp::Sqrt, Disc))));

  verifyProgramOrDie(P);
  return P;
}
