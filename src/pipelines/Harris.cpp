//===- pipelines/Harris.cpp - Harris corner detector -------------------------===//
//
// The nine-kernel Harris pipeline of the paper's Figure 3:
//   dx, dy   : local derivative kernels (Sobel masks) on the input,
//   sx, sy   : squares of the derivatives (point),
//   sxy      : product of the derivatives (point, two inputs),
//   gx, gy,
//   gxy      : Gaussian smoothing of the squares (local, binomial mask),
//   hc       : corner response det(M) - k * trace(M)^2 (point).
//
//===----------------------------------------------------------------------===//

#include "ir/Verifier.h"
#include "pipelines/Masks.h"
#include "pipelines/Pipelines.h"

using namespace kf;

Program kf::makeHarris(int Width, int Height) {
  Program P("harris");
  ExprContext &C = P.context();

  ImageId In = P.addImage("in", Width, Height);
  ImageId Dx = P.addImage("dx_out", Width, Height);
  ImageId Dy = P.addImage("dy_out", Width, Height);
  ImageId Sx = P.addImage("sx_out", Width, Height);
  ImageId Sy = P.addImage("sy_out", Width, Height);
  ImageId Sxy = P.addImage("sxy_out", Width, Height);
  ImageId Gx = P.addImage("gx_out", Width, Height);
  ImageId Gy = P.addImage("gy_out", Width, Height);
  ImageId Gxy = P.addImage("gxy_out", Width, Height);
  ImageId Hc = P.addImage("hc_out", Width, Height);

  int MaskX = P.addMask(sobelX3());
  int MaskY = P.addMask(sobelY3());
  int MaskG = P.addMask(binomial3Normalized());

  auto conv = [&](int MaskIdx) {
    return C.stencil(MaskIdx, ReduceOp::Sum,
                     C.mul(C.maskValue(), C.stencilInput(0)));
  };

  auto addLocal = [&](const char *Name, ImageId Input, ImageId Output,
                      int MaskIdx) {
    Kernel K;
    K.Name = Name;
    K.Kind = OperatorKind::Local;
    K.Inputs = {Input};
    K.Output = Output;
    K.Body = conv(MaskIdx);
    K.Border = BorderMode::Clamp;
    P.addKernel(std::move(K));
  };

  addLocal("dx", In, Dx, MaskX);
  addLocal("dy", In, Dy, MaskY);

  auto addSquare = [&](const char *Name, std::vector<ImageId> Inputs,
                       ImageId Output, const Expr *Body) {
    Kernel K;
    K.Name = Name;
    K.Kind = OperatorKind::Point;
    K.Inputs = std::move(Inputs);
    K.Output = Output;
    K.Body = Body;
    P.addKernel(std::move(K));
  };

  // The square kernels have n_ALU = 2 (multiply + store), matching the
  // paper's Harris example values.
  addSquare("sx", {Dx}, Sx, C.mul(C.inputAt(0), C.inputAt(0)));
  addSquare("sy", {Dy}, Sy, C.mul(C.inputAt(0), C.inputAt(0)));
  addSquare("sxy", {Dx, Dy}, Sxy, C.mul(C.inputAt(0), C.inputAt(1)));

  addLocal("gx", Sx, Gx, MaskG);
  addLocal("gy", Sy, Gy, MaskG);
  addLocal("gxy", Sxy, Gxy, MaskG);

  // hc = (gx*gy - gxy^2) - k * (gx + gy)^2 with k = 0.04.
  {
    Kernel K;
    K.Name = "hc";
    K.Kind = OperatorKind::Point;
    K.Inputs = {Gx, Gy, Gxy};
    K.Output = Hc;
    const Expr *Det = C.sub(C.mul(C.inputAt(0), C.inputAt(1)),
                            C.mul(C.inputAt(2), C.inputAt(2)));
    const Expr *Trace = C.add(C.inputAt(0), C.inputAt(1));
    K.Body = C.sub(Det, C.mul(C.floatConst(0.04f), C.mul(Trace, Trace)));
    P.addKernel(std::move(K));
  }

  verifyProgramOrDie(P);
  return P;
}
