//===- pipelines/Sobel.cpp - Sobel edge filter --------------------------------===//
//
// Two local derivative kernels sharing the input image plus a point
// gradient-magnitude kernel. Basic fusion rejects the whole pipeline
// (shared input = "external" dependence in prior work); the optimized
// technique fuses all three kernels into one.
//
//===----------------------------------------------------------------------===//

#include "ir/Verifier.h"
#include "pipelines/Masks.h"
#include "pipelines/Pipelines.h"

using namespace kf;

Program kf::makeSobel(int Width, int Height) {
  Program P("sobel");
  ExprContext &C = P.context();

  ImageId In = P.addImage("in", Width, Height);
  ImageId Dx = P.addImage("dx_out", Width, Height);
  ImageId Dy = P.addImage("dy_out", Width, Height);
  ImageId Mag = P.addImage("mag_out", Width, Height);

  int MaskX = P.addMask(sobelX3());
  int MaskY = P.addMask(sobelY3());

  auto addDerivative = [&](const char *Name, ImageId Output, int MaskIdx) {
    Kernel K;
    K.Name = Name;
    K.Kind = OperatorKind::Local;
    K.Inputs = {In};
    K.Output = Output;
    K.Body = C.stencil(MaskIdx, ReduceOp::Sum,
                       C.mul(C.maskValue(), C.stencilInput(0)));
    K.Border = BorderMode::Clamp;
    P.addKernel(std::move(K));
  };
  addDerivative("dx", Dx, MaskX);
  addDerivative("dy", Dy, MaskY);

  // mag = sqrt(dx^2 + dy^2).
  Kernel K;
  K.Name = "mag";
  K.Kind = OperatorKind::Point;
  K.Inputs = {Dx, Dy};
  K.Output = Mag;
  K.Body = C.unary(UnOp::Sqrt, C.add(C.mul(C.inputAt(0), C.inputAt(0)),
                                     C.mul(C.inputAt(1), C.inputAt(1))));
  P.addKernel(std::move(K));

  verifyProgramOrDie(P);
  return P;
}
