//===- pipelines/Registry.cpp - Application registry ---------------------------===//

#include "pipelines/Pipelines.h"

using namespace kf;

const std::vector<PipelineSpec> &kf::paperPipelines() {
  // The paper evaluates a constant 2,048 x 2,048 gray image; the Night
  // filter is the exception at 1,920 x 1,200 RGB. Table order of Table I.
  static const std::vector<PipelineSpec> Specs = {
      {"harris", 2048, 2048, makeHarris},
      {"sobel", 2048, 2048, makeSobel},
      {"unsharp", 2048, 2048, makeUnsharp},
      {"shitomasi", 2048, 2048, makeShiTomasi},
      {"enhance", 2048, 2048, makeEnhancement},
      {"night", 1920, 1200, makeNight},
  };
  return Specs;
}

const PipelineSpec *kf::findPipeline(const std::string &Name) {
  for (const PipelineSpec &Spec : paperPipelines())
    if (Spec.Name == Name)
      return &Spec;
  return nullptr;
}
