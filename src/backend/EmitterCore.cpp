//===- backend/EmitterCore.cpp --------------------------------------------------===//

#include "backend/EmitterCore.h"

#include "ir/CostInfo.h"
#include "support/Error.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <cassert>
#include <map>

using namespace kf;

namespace {

/// Replaces characters that cannot appear in C identifiers.
std::string sanitize(std::string Name) {
  for (char &Ch : Name)
    if (!std::isalnum(static_cast<unsigned char>(Ch)))
      Ch = '_';
  return Name;
}

/// Math builtin name per target: CUDA and C++ use the f-suffixed C
/// functions; OpenCL C uses the generic overloads.
std::string mathFnName(kf::detail::BackendTarget Target, const char *Base) {
  if (Target == kf::detail::BackendTarget::OpenCl)
    return Base;
  return std::string(Base) + "f";
}

std::string floatLit(float Value) {
  std::string Text = formatDouble(Value, 6);
  return Text + "f";
}

/// Emission of one fused kernel: stage device functions plus the __global__
/// entry point.
using kf::detail::BackendTarget;

class KernelEmitter {
public:
  KernelEmitter(const FusedProgram &FP, const FusedKernel &FK,
                BackendTarget Target)
      : P(*FP.Source), FP(FP), FK(FK), Target(Target) {
    // External images of the block, in image-id order: every stage
    // function receives them all, mirroring how the fused kernel only
    // preserves the source inputs (Section II-B).
    for (const FusedStage &Stage : FK.Stages)
      for (ImageId In : P.kernel(Stage.Kernel).Inputs)
        if (!stageProducing(In))
          if (std::find(Externals.begin(), Externals.end(), In) ==
              Externals.end())
            Externals.push_back(In);
    std::sort(Externals.begin(), Externals.end());
  }

  std::string emit() {
    std::string Out;
    // Stage functions for everything but the destinations, in stage
    // order.
    for (const FusedStage &Stage : FK.Stages)
      if (!FK.isDestination(Stage.Kernel))
        Out += emitStageFunction(Stage);
    Out += emitGlobalKernel();
    return Out;
  }


  /// Externals in entry-point order; exposed through the public helpers.
  const std::vector<ImageId> &externals() const { return Externals; }

private:
  const FusedStage *stageProducing(ImageId Img) const {
    for (const FusedStage &Stage : FK.Stages)
      if (P.kernel(Stage.Kernel).Output == Img &&
          !FK.isDestination(Stage.Kernel))
        return &Stage;
    return nullptr;
  }

  std::string prefix() const {
    return sanitize(P.name()) + "_" + sanitize(FK.Name);
  }

  std::string stageFnName(KernelId Id) const {
    return prefix() + "_" + sanitize(P.kernel(Id).Name);
  }

  std::string imageArg(ImageId Img) const {
    return "img_" + sanitize(P.image(Img).Name);
  }

  /// Pointer type of image parameters ("__global const float *" under
  /// OpenCL).
  std::string imagePtrType() const {
    return Target == BackendTarget::OpenCl ? "__global const float *"
                                           : "const float *";
  }

  /// Common parameter list shared by stage functions.
  std::string commonParams() const {
    std::string Params;
    for (ImageId Img : Externals)
      Params += imagePtrType() + imageArg(Img) + ", ";
    Params += "int width, int height";
    return Params;
  }

  std::string commonArgs() const {
    std::string Args;
    for (ImageId Img : Externals)
      Args += imageArg(Img) + ", ";
    Args += "width, height";
    return Args;
  }

  /// Border-exchange expression for one axis.
  std::string exchangeExpr(const std::string &V, const std::string &N,
                           BorderMode Mode) const {
    switch (Mode) {
    case BorderMode::Clamp:
      return "idx_clamp(" + V + ", " + N + ")";
    case BorderMode::Mirror:
      return "idx_mirror(" + V + ", " + N + ")";
    case BorderMode::Repeat:
      return "idx_repeat(" + V + ", " + N + ")";
    case BorderMode::Constant:
      // Handled by the caller (value substitution, not index exchange).
      return V;
    }
    KF_UNREACHABLE("unknown border mode");
  }

  /// Emits a bordered read of external image \p Img at (XE, YE, c) on
  /// behalf of kernel \p Reader.
  std::string externalRead(ImageId Img, const Kernel &Reader,
                           const std::string &XE, const std::string &YE,
                           const std::string &CE) const {
    const ImageInfo &Info = P.image(Img);
    std::string Channels = std::to_string(Info.Channels);
    if (Reader.Border == BorderMode::Constant) {
      std::string Oob = "(" + XE + ") < 0 || (" + XE + ") >= width || (" +
                        YE + ") < 0 || (" + YE + ") >= height";
      std::string Idx = "((" + YE + ") * width + (" + XE + ")) * " +
                        Channels + " + " + CE;
      return "((" + Oob + ") ? " + floatLit(Reader.BorderConstant) + " : " +
             imageArg(Img) + "[" + Idx + "])";
    }
    std::string XS = exchangeExpr(XE, "width", Reader.Border);
    std::string YS = exchangeExpr(YE, "height", Reader.Border);
    return imageArg(Img) + "[(" + YS + " * width + " + XS + ") * " +
           Channels + " + " + CE + "]";
  }

  /// Emits a read of image \p Img (internal or external) at coordinates
  /// that may lie in the exterior region. Internal reads apply the index
  /// exchange of Section IV-B with the *reader's* border mode, then invoke
  /// the producer stage function.
  std::string readAt(ImageId Img, const Kernel &Reader, const std::string &XE,
                     const std::string &YE, const std::string &CE,
                     bool MayBeExterior, std::string &Stmts, int &Tmp) const {
    const FusedStage *Producer = stageProducing(Img);
    if (!Producer)
      return externalRead(Img, Reader, XE, YE, CE);

    if (!MayBeExterior)
      return stageFnName(Producer->Kernel) + "(" + commonArgs() + ", " + XE +
             ", " + YE + ", " + CE + ")";

    // Recompute with index exchange: clamp/mirror/repeat exchange the
    // coordinate; constant short-circuits to the reader's constant.
    std::string XV = "ex" + std::to_string(Tmp);
    std::string YV = "ey" + std::to_string(Tmp);
    ++Tmp;
    if (Reader.Border == BorderMode::Constant) {
      std::string RV = "rv" + std::to_string(Tmp++);
      Stmts += "    float " + RV + ";\n";
      Stmts += "    { int " + XV + " = " + XE + ", " + YV + " = " + YE +
               ";\n";
      Stmts += "      " + RV + " = (" + XV + " < 0 || " + XV +
               " >= width || " + YV + " < 0 || " + YV + " >= height) ? " +
               floatLit(Reader.BorderConstant) + " : " +
               stageFnName(Producer->Kernel) + "(" + commonArgs() + ", " +
               XV + ", " + YV + ", " + CE + "); }\n";
      return RV;
    }
    Stmts += "    /* index exchange (" +
             std::string(borderModeName(Reader.Border)) + ") */\n";
    Stmts += "    int " + XV + " = " +
             exchangeExpr("(" + XE + ")", "width", Reader.Border) + ";\n";
    Stmts += "    int " + YV + " = " +
             exchangeExpr("(" + YE + ")", "height", Reader.Border) + ";\n";
    return stageFnName(Producer->Kernel) + "(" + commonArgs() + ", " + XV +
           ", " + YV + ", " + CE + ")";
  }

  /// Recursively emits \p E as a C expression; side statements (stencil
  /// loops) are appended to \p Stmts at \p Indent.
  std::string emitExpr(const Expr *E, const Kernel &K, std::string &Stmts,
                       int &Tmp, const std::string &DxVar,
                       const std::string &DyVar,
                       const std::string &MaskVar) {
    switch (E->Kind) {
    case ExprKind::FloatConst:
      return floatLit(E->Value);
    case ExprKind::CoordX:
      return "(float)x";
    case ExprKind::CoordY:
      return "(float)y";
    case ExprKind::InputAt: {
      std::string CE =
          E->Channel < 0 ? std::string("c") : std::to_string(E->Channel);
      std::string XE = E->OffsetX == 0
                           ? std::string("x")
                           : "x + (" + std::to_string(E->OffsetX) + ")";
      std::string YE = E->OffsetY == 0
                           ? std::string("y")
                           : "y + (" + std::to_string(E->OffsetY) + ")";
      bool MayBeExterior = E->OffsetX != 0 || E->OffsetY != 0;
      return readAt(K.Inputs[E->InputIdx], K, XE, YE, CE, MayBeExterior,
                    Stmts, Tmp);
    }
    case ExprKind::StencilInput: {
      assert(!DxVar.empty() && "window access outside a stencil");
      std::string CE =
          E->Channel < 0 ? std::string("c") : std::to_string(E->Channel);
      return readAt(K.Inputs[E->InputIdx], K, "x + " + DxVar, "y + " + DyVar,
                    CE, /*MayBeExterior=*/true, Stmts, Tmp);
    }
    case ExprKind::MaskValue:
      assert(!MaskVar.empty() && "mask value outside a stencil");
      return MaskVar;
    case ExprKind::StencilOffX:
      return "(float)" + DxVar;
    case ExprKind::StencilOffY:
      return "(float)" + DyVar;
    case ExprKind::Binary: {
      std::string L = emitExpr(E->Lhs, K, Stmts, Tmp, DxVar, DyVar, MaskVar);
      std::string R = emitExpr(E->Rhs, K, Stmts, Tmp, DxVar, DyVar, MaskVar);
      switch (E->BinaryOp) {
      case BinOp::Add:
        return "(" + L + " + " + R + ")";
      case BinOp::Sub:
        return "(" + L + " - " + R + ")";
      case BinOp::Mul:
        return "(" + L + " * " + R + ")";
      case BinOp::Div:
        return "(" + L + " / " + R + ")";
      case BinOp::Min:
        return mathFnName(Target, "fmin") + "(" + L + ", " + R + ")";
      case BinOp::Max:
        return mathFnName(Target, "fmax") + "(" + L + ", " + R + ")";
      case BinOp::Pow:
        return mathFnName(Target, "pow") + "(" + L + ", " + R + ")";
      case BinOp::CmpLT:
        return "((" + L + " < " + R + ") ? 1.0f : 0.0f)";
      case BinOp::CmpGT:
        return "((" + L + " > " + R + ") ? 1.0f : 0.0f)";
      }
      KF_UNREACHABLE("unknown binary op");
    }
    case ExprKind::Unary: {
      std::string V = emitExpr(E->Lhs, K, Stmts, Tmp, DxVar, DyVar, MaskVar);
      switch (E->UnaryOp) {
      case UnOp::Neg:
        return "(-" + V + ")";
      case UnOp::Abs:
        return mathFnName(Target, "fabs") + "(" + V + ")";
      case UnOp::Sqrt:
        return mathFnName(Target, "sqrt") + "(" + V + ")";
      case UnOp::Exp:
        return mathFnName(Target, "exp") + "(" + V + ")";
      case UnOp::Log:
        return mathFnName(Target, "log") + "(" + V + ")";
      case UnOp::Floor:
        return mathFnName(Target, "floor") + "(" + V + ")";
      }
      KF_UNREACHABLE("unknown unary op");
    }
    case ExprKind::Select: {
      std::string Cond =
          emitExpr(E->Cond, K, Stmts, Tmp, DxVar, DyVar, MaskVar);
      std::string L = emitExpr(E->Lhs, K, Stmts, Tmp, DxVar, DyVar, MaskVar);
      std::string R = emitExpr(E->Rhs, K, Stmts, Tmp, DxVar, DyVar, MaskVar);
      return "((" + Cond + " != 0.0f) ? " + L + " : " + R + ")";
    }
    case ExprKind::Stencil: {
      const Mask &M = P.mask(E->MaskIdx);
      std::string Acc = "acc" + std::to_string(Tmp);
      std::string Dx = "dx" + std::to_string(Tmp);
      std::string Dy = "dy" + std::to_string(Tmp);
      std::string Mv = "mv" + std::to_string(Tmp);
      ++Tmp;
      const char *Init = "0.0f";
      const char *Combine = "+";
      switch (E->Reduce) {
      case ReduceOp::Sum:
        break;
      case ReduceOp::Product:
        Init = "1.0f";
        Combine = "*";
        break;
      case ReduceOp::Min:
        Init = "3.402823466e+38f";
        break;
      case ReduceOp::Max:
        Init = "-3.402823466e+38f";
        break;
      }
      Stmts += "    float " + Acc + " = " + Init + ";\n";
      Stmts += "    for (int " + Dy + " = " + std::to_string(-M.haloY()) +
               "; " + Dy + " <= " + std::to_string(M.haloY()) + "; ++" + Dy +
               ")\n";
      Stmts += "    for (int " + Dx + " = " + std::to_string(-M.haloX()) +
               "; " + Dx + " <= " + std::to_string(M.haloX()) + "; ++" + Dx +
               ") {\n";
      Stmts += "    float " + Mv + " = " + maskName(E->MaskIdx) + "[(" + Dy +
               " + " + std::to_string(M.haloY()) + ") * " +
               std::to_string(M.Width) + " + (" + Dx + " + " +
               std::to_string(M.haloX()) + ")];\n";
      std::string ElemStmts;
      std::string Elem = emitExpr(E->Lhs, K, ElemStmts, Tmp, Dx, Dy, Mv);
      Stmts += ElemStmts;
      if (E->Reduce == ReduceOp::Min)
        Stmts += "    " + Acc + " = " + mathFnName(Target, "fmin") + "(" + Acc + ", " + Elem + ");\n";
      else if (E->Reduce == ReduceOp::Max)
        Stmts += "    " + Acc + " = " + mathFnName(Target, "fmax") + "(" + Acc + ", " + Elem + ");\n";
      else
        Stmts += "    " + Acc + " = " + Acc + " " + Combine + " " + Elem +
                 ";\n";
      Stmts += "    }\n";
      return Acc;
    }
    }
    KF_UNREACHABLE("unknown expression kind");
  }

  std::string maskName(int MaskIdx) const {
    return sanitize(P.name()) + "_mask" + std::to_string(MaskIdx);
  }

  std::string emitStageFunction(const FusedStage &Stage) {
    const Kernel &K = P.kernel(Stage.Kernel);
    std::string Out;
    Out += "// stage '" + K.Name + "': output placement " +
           placementName(Stage.OutputPlacement) + "\n";
    const char *Qualifier = "static inline float ";
    if (Target == BackendTarget::Cuda)
      Qualifier = "__device__ float ";
    else if (Target == BackendTarget::OpenCl)
      Qualifier = "float "; // OpenCL C helper function.
    Out += Qualifier + stageFnName(Stage.Kernel) + "(" + commonParams() +
           ", int x, int y, int c) {\n";
    std::string Stmts;
    int Tmp = 0;
    std::string Value = emitExpr(K.Body, K, Stmts, Tmp, "", "", "");
    Out += Stmts;
    Out += "    return " + Value + ";\n";
    Out += "}\n\n";
    return Out;
  }

  /// Output-pointer parameter name of destination \p Id: "out" when the
  /// kernel has a single destination, "out_<image>" otherwise.
  std::string outParamName(KernelId Id) const {
    if (FK.Destinations.size() == 1)
      return "out";
    return "out_" + sanitize(P.image(P.kernel(Id).Output).Name);
  }

  std::string emitGlobalKernel() {
    std::string Out;
    Out += "// fused kernel '" + FK.Name + "' (" +
           std::to_string(FK.Stages.size()) + " stage" +
           (FK.Stages.size() == 1 ? "" : "s") +
           (FK.Destinations.size() == 1
                ? std::string()
                : ", " + std::to_string(FK.Destinations.size()) +
                      " destinations") +
           ")\n";
    std::string OutParams;
    for (KernelId DestId : FK.Destinations)
      OutParams += std::string(Target == BackendTarget::OpenCl
                                   ? "__global float *"
                                   : "float *") +
                   outParamName(DestId) + ", ";
    if (Target == BackendTarget::Cuda) {
      Out += "__global__ void " + prefix() + "_kernel(" + OutParams +
             commonParams() + ") {\n";
      Out += "    int x = blockIdx.x * blockDim.x + threadIdx.x;\n";
      Out += "    int y = blockIdx.y * blockDim.y + threadIdx.y;\n";
      Out += "    if (x >= width || y >= height) return;\n";
    } else if (Target == BackendTarget::OpenCl) {
      Out += "__kernel void " + prefix() + "_kernel(" + OutParams +
             commonParams() + ") {\n";
      Out += "    int x = get_global_id(0);\n";
      Out += "    int y = get_global_id(1);\n";
      Out += "    if (x >= width || y >= height) return;\n";
    } else {
      // CPU target: an extern "C" loop nest over the iteration space.
      Out += "extern \"C\" void " + prefix() + "_kernel(" + OutParams +
             commonParams() + ") {\n";
      Out += "    for (int y = 0; y < height; ++y)\n";
      Out += "    for (int x = 0; x < width; ++x) {\n";
    }
    for (KernelId DestId : FK.Destinations) {
      const Kernel &Dest = P.kernel(DestId);
      const ImageInfo &OutInfo = P.image(Dest.Output);
      Out += "    for (int c = 0; c < " + std::to_string(OutInfo.Channels) +
             "; ++c) {\n";
      std::string Stmts;
      int Tmp = 0;
      std::string Value = emitExpr(Dest.Body, Dest, Stmts, Tmp, "", "", "");
      Out += Stmts;
      Out += "    " + outParamName(DestId) + "[(y * width + x) * " +
             std::to_string(OutInfo.Channels) + " + c] = " + Value +
             ";\n";
      Out += "    }\n";
    }
    if (Target == BackendTarget::Cpp)
      Out += "    }\n";
    Out += "}\n\n";
    return Out;
  }

  const Program &P;
  const FusedProgram &FP;
  const FusedKernel &FK;
  BackendTarget Target;
  std::vector<ImageId> Externals;
};

} // namespace

std::string kf::detail::emitKernelForTarget(const FusedProgram &FP,
                                            unsigned Index,
                                            BackendTarget Target) {
  assert(Index < FP.Kernels.size() && "fused kernel index out of range");
  KernelEmitter Emitter(FP, FP.Kernels[Index], Target);
  return Emitter.emit();
}

std::string kf::detail::emitProgramForTarget(const FusedProgram &FP,
                                             BackendTarget Target) {
  const Program &P = *FP.Source;
  bool Cuda = Target == BackendTarget::Cuda;
  bool OpenCl = Target == BackendTarget::OpenCl;
  std::string Out;
  Out += std::string("// ") +
         (Cuda ? "CUDA" : (OpenCl ? "OpenCL" : "C++")) +
         " code generated by the kernel-fusion reproduction of\n";
  Out += "// Qiao et al., \"From Loop Fusion to Kernel Fusion\", CGO 2019.\n";
  Out += "// program: " + P.name() + ", style: " +
         (FP.Style == FusionStyle::Optimized ? "optimized" : "basic") +
         ", launches: " + std::to_string(FP.Kernels.size()) + "\n\n";
  if (!Cuda && !OpenCl)
    Out += "#include <cmath>\n\n";

  // Border-exchange helpers (Section IV-B index exchange).
  std::string Fn = Cuda ? "__device__ int "
                        : (OpenCl ? "int " : "static inline int ");
  Out += Fn + "idx_clamp(int v, int n) "
         "{ return v < 0 ? 0 : (v >= n ? n - 1 : v); }\n";
  Out += Fn + "idx_mirror(int v, int n) "
         "{ int p = 2 * n; int m = v % p; if (m < 0) m += p; "
         "return m < n ? m : p - 1 - m; }\n";
  Out += Fn + "idx_repeat(int v, int n) "
         "{ int m = v % n; return m < 0 ? m + n : m; }\n\n";

  // Mask constants.
  for (int M = 0; M != static_cast<int>(P.numMasks()); ++M) {
    const Mask &Msk = P.mask(M);
    Out += std::string(Cuda ? "__constant__ float "
                             : (OpenCl ? "__constant float "
                                       : "static const float ")) +
           sanitize(P.name()) + "_mask" + std::to_string(M) + "[" +
           std::to_string(Msk.size()) + "] = {";
    for (size_t I = 0; I != Msk.Weights.size(); ++I) {
      if (I != 0)
        Out += ", ";
      Out += floatLit(Msk.Weights[I]);
    }
    Out += "};\n";
  }
  Out += "\n";

  for (unsigned Index = 0; Index != FP.Kernels.size(); ++Index)
    Out += emitKernelForTarget(FP, Index, Target);
  return Out;
}

std::string kf::detail::kernelEntryName(const FusedProgram &FP,
                                        unsigned Index) {
  assert(Index < FP.Kernels.size() && "fused kernel index out of range");
  return sanitize(FP.Source->name()) + "_" +
         sanitize(FP.Kernels[Index].Name) + "_kernel";
}

std::vector<kf::ImageId>
kf::detail::kernelExternalImages(const FusedProgram &FP, unsigned Index) {
  assert(Index < FP.Kernels.size() && "fused kernel index out of range");
  KernelEmitter Emitter(FP, FP.Kernels[Index], BackendTarget::Cpp);
  return Emitter.externals();
}
