//===- backend/EmitterCore.h - Shared code emission core --------*- C++ -*-===//
///
/// \file
/// The target-parametric code generator behind both backends. CUDA and
/// plain C++ share the entire expression/stage emission (the C math calls
/// fminf/powf/sqrtf/... are valid in both dialects); the targets differ
/// only in function qualifiers, the kernel wrapper (thread indexing vs
/// nested loops), and the constant-memory qualifier for masks.
///
/// This header is internal to the backend library; users include
/// backend/cuda/CudaEmitter.h or backend/cpu/CppEmitter.h.
///
//===----------------------------------------------------------------------===//

#ifndef KF_BACKEND_EMITTERCORE_H
#define KF_BACKEND_EMITTERCORE_H

#include "transform/FusedKernel.h"

#include <string>

namespace kf {
namespace detail {

/// Code generation targets.
enum class BackendTarget {
  Cuda,   ///< __global__ kernels, __device__ stages, __constant__ masks.
  Cpp,    ///< extern "C" loop nests, static inline stages, const masks.
  OpenCl, ///< __kernel entry points over get_global_id, __constant masks.
};

/// Emits fused kernel \p Index (stage functions + entry point).
std::string emitKernelForTarget(const FusedProgram &FP, unsigned Index,
                                BackendTarget Target);

/// Emits the whole translation unit: prelude, border helpers, mask
/// constants, and every fused kernel.
std::string emitProgramForTarget(const FusedProgram &FP,
                                 BackendTarget Target);

/// Entry-point name of fused kernel \p Index:
/// "<program>_<stage+stage+...>_kernel" with identifiers sanitized.
std::string kernelEntryName(const FusedProgram &FP, unsigned Index);

/// External images fused kernel \p Index reads, in parameter order.
std::vector<ImageId> kernelExternalImages(const FusedProgram &FP,
                                          unsigned Index);

} // namespace detail
} // namespace kf

#endif // KF_BACKEND_EMITTERCORE_H
