//===- backend/cuda/CudaEmitter.cpp - CUDA backend entry points -----------------===//

#include "backend/cuda/CudaEmitter.h"

#include "backend/EmitterCore.h"

using namespace kf;

std::string kf::emitCudaKernel(const FusedProgram &FP, unsigned Index) {
  return detail::emitKernelForTarget(FP, Index,
                                     detail::BackendTarget::Cuda);
}

std::string kf::emitCudaProgram(const FusedProgram &FP) {
  return detail::emitProgramForTarget(FP, detail::BackendTarget::Cuda);
}
