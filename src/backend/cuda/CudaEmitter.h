//===- backend/cuda/CudaEmitter.h - CUDA source generation ------*- C++ -*-===//
///
/// \file
/// The source-to-source backend: prints (fused) programs as CUDA C device
/// code, mirroring what Hipacc's CUDA code generation produces after the
/// kernel-fusion pass. The emitted text is a faithful rendering of the
/// transformation -- producer bodies become __device__ stage functions,
/// register-placed intermediates become local variables, recomputed
/// producers are re-invoked per window element with the index exchange of
/// Section IV-B applied to exterior coordinates, and shared-tile stages
/// stage through __shared__ arrays.
///
/// The output is deterministic and golden-tested; it is not compiled in
/// this environment (no CUDA toolchain), which DESIGN.md documents as a
/// substitution.
///
//===----------------------------------------------------------------------===//

#ifndef KF_BACKEND_CUDA_CUDAEMITTER_H
#define KF_BACKEND_CUDA_CUDAEMITTER_H

#include "transform/FusedKernel.h"

#include <string>

namespace kf {

/// Emits the complete CUDA translation unit for \p FP: mask constants,
/// border helpers, stage device functions, and one __global__ kernel per
/// fused kernel.
std::string emitCudaProgram(const FusedProgram &FP);

/// Emits only the __global__ kernel (plus its stage functions) for fused
/// kernel \p Index of \p FP.
std::string emitCudaKernel(const FusedProgram &FP, unsigned Index);

} // namespace kf

#endif // KF_BACKEND_CUDA_CUDAEMITTER_H
