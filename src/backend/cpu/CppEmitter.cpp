//===- backend/cpu/CppEmitter.cpp - C++ backend entry points --------------------===//

#include "backend/cpu/CppEmitter.h"

#include "backend/EmitterCore.h"

using namespace kf;

std::string kf::emitCppProgram(const FusedProgram &FP) {
  return detail::emitProgramForTarget(FP, detail::BackendTarget::Cpp);
}

std::string kf::emitCppKernel(const FusedProgram &FP, unsigned Index) {
  return detail::emitKernelForTarget(FP, Index, detail::BackendTarget::Cpp);
}

std::string kf::cppKernelEntryName(const FusedProgram &FP, unsigned Index) {
  return detail::kernelEntryName(FP, Index);
}

std::vector<ImageId> kf::cppKernelExternalImages(const FusedProgram &FP,
                                                 unsigned Index) {
  return detail::kernelExternalImages(FP, Index);
}
