//===- backend/cpu/CppEmitter.h - C++ (CPU) source generation ---*- C++ -*-===//
///
/// \file
/// The CPU backend the paper lists as future work ("we want to extend our
/// technique to other backend targets such as CPUs"): prints (fused)
/// programs as portable C++ loop nests with extern "C" entry points, one
/// per fused kernel:
///
///   extern "C" void <program>_<kernel>_kernel(
///       float *out, const float *img_<input>..., int width, int height);
///
/// Unlike the CUDA output, this translation unit compiles with any host
/// C++ compiler -- the test suite builds it with the system compiler and
/// runs it against the interpreter as a differential check of the whole
/// source-to-source path.
///
//===----------------------------------------------------------------------===//

#ifndef KF_BACKEND_CPU_CPPEMITTER_H
#define KF_BACKEND_CPU_CPPEMITTER_H

#include "transform/FusedKernel.h"

#include <string>

namespace kf {

/// Emits the complete C++ translation unit for \p FP.
std::string emitCppProgram(const FusedProgram &FP);

/// Emits only fused kernel \p Index of \p FP (stage functions + entry).
std::string emitCppKernel(const FusedProgram &FP, unsigned Index);

/// Name of the generated entry point for fused kernel \p Index.
std::string cppKernelEntryName(const FusedProgram &FP, unsigned Index);

/// The external images fused kernel \p Index reads, in the order its
/// entry point takes them (ascending image id). Callers pass one
/// channel-interleaved float buffer per entry, then width and height.
std::vector<ImageId> cppKernelExternalImages(const FusedProgram &FP,
                                             unsigned Index);

} // namespace kf

#endif // KF_BACKEND_CPU_CPPEMITTER_H
