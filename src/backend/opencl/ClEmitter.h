//===- backend/opencl/ClEmitter.h - OpenCL source generation ----*- C++ -*-===//
///
/// \file
/// The OpenCL backend: prints (fused) programs as OpenCL C kernels, the
/// second GPU dialect Hipacc targets ("Shared Memory in CUDA is
/// equivalent to the local memory in OpenCL" -- the paper's terminology
/// footnote). Entry points are __kernel functions over get_global_id;
/// image parameters live in __global memory and masks in __constant
/// memory. Like the CUDA output it is golden-tested but not compiled
/// (no OpenCL runtime in this environment).
///
//===----------------------------------------------------------------------===//

#ifndef KF_BACKEND_OPENCL_CLEMITTER_H
#define KF_BACKEND_OPENCL_CLEMITTER_H

#include "transform/FusedKernel.h"

#include <string>

namespace kf {

/// Emits the complete OpenCL translation unit for \p FP.
std::string emitOpenClProgram(const FusedProgram &FP);

/// Emits only fused kernel \p Index of \p FP.
std::string emitOpenClKernel(const FusedProgram &FP, unsigned Index);

} // namespace kf

#endif // KF_BACKEND_OPENCL_CLEMITTER_H
