//===- backend/opencl/ClEmitter.cpp - OpenCL backend entry points ---------------===//

#include "backend/opencl/ClEmitter.h"

#include "backend/EmitterCore.h"

using namespace kf;

std::string kf::emitOpenClProgram(const FusedProgram &FP) {
  return detail::emitProgramForTarget(FP, detail::BackendTarget::OpenCl);
}

std::string kf::emitOpenClKernel(const FusedProgram &FP, unsigned Index) {
  return detail::emitKernelForTarget(FP, Index,
                                     detail::BackendTarget::OpenCl);
}
