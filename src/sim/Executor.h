//===- sim/Executor.h - Functional interpreter for programs -----*- C++ -*-===//
///
/// \file
/// Executes programs and fused programs on real image buffers. This is the
/// reproduction's stand-in for running the generated CUDA on a GPU: it
/// implements the exact data semantics the generated code would have,
/// which is what the correctness claims of Section IV (border fusion with
/// index exchange) are about. Fused execution supports disabling the index
/// exchange to reproduce the *incorrect* naive border fusion of Figure 4b.
///
//===----------------------------------------------------------------------===//

#ifndef KF_SIM_EXECUTOR_H
#define KF_SIM_EXECUTOR_H

#include "image/Image.h"
#include "transform/FusedKernel.h"

#include <vector>

namespace kf {

/// Options controlling fused execution.
struct ExecutionOptions {
  /// Apply the index-exchange method of Section IV-B to window accesses
  /// that reach into the exterior region of eliminated intermediates.
  /// Disabling this reproduces the incorrect border fusion of Figure 4b.
  bool UseIndexExchange = true;
};

/// Allocates an image pool for \p P: one (empty) image slot per program
/// image, shaped per the image table. External inputs must be filled by
/// the caller before execution.
std::vector<Image> makeImagePool(const Program &P);

/// Executes every kernel of \p P unfused, in topological order, filling
/// the pool's non-input images. External inputs must be present.
void runUnfused(const Program &P, std::vector<Image> &Pool);

/// Executes \p FP, writing only the fused kernels' destination outputs;
/// eliminated intermediates stay empty (that is the point of fusion).
void runFused(const FusedProgram &FP, std::vector<Image> &Pool,
              const ExecutionOptions &Options = ExecutionOptions());

/// Evaluates a single kernel of \p P at one pixel, reading inputs from
/// \p Pool (border handling per the kernel). Exposed for unit tests.
float evalKernelAt(const Program &P, KernelId Id,
                   const std::vector<Image> &Pool, int X, int Y,
                   int Channel);

} // namespace kf

#endif // KF_SIM_EXECUTOR_H
