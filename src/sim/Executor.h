//===- sim/Executor.h - Functional interpreter for programs -----*- C++ -*-===//
///
/// \file
/// Executes programs and fused programs on real image buffers. This is the
/// reproduction's stand-in for running the generated CUDA on a GPU: it
/// implements the exact data semantics the generated code would have,
/// which is what the correctness claims of Section IV (border fusion with
/// index exchange) are about. Fused execution supports disabling the index
/// exchange to reproduce the *incorrect* naive border fusion of Figure 4b.
///
/// Two evaluation engines share those semantics:
///   - the AST walker (runUnfused / runFused): virtual dispatch per
///     expression node, recursive producer re-evaluation -- the semantic
///     reference;
///   - the bytecode VM (runUnfusedVm / runFusedVm): kernels compile once
///     to flat instruction streams (fused kernels to staged programs with
///     stage-call ops, see ir/ExprVM.h), evaluated row-wise over the
///     interior and per-pixel over the halo.
/// Both engines execute over a tile decomposition driven by a thread pool
/// (support/ThreadPool.h). Every pixel is a pure function of the inputs,
/// so results are bit-identical at any thread count; the test suite
/// asserts this.
///
//===----------------------------------------------------------------------===//

#ifndef KF_SIM_EXECUTOR_H
#define KF_SIM_EXECUTOR_H

#include "image/Image.h"
#include "ir/ExprVM.h"
#include "support/ThreadPool.h"
#include "transform/FusedKernel.h"

#include <vector>

namespace kf {

struct JitProgram;

/// Options controlling execution.
struct ExecutionOptions {
  /// Apply the index-exchange method of Section IV-B to window accesses
  /// that reach into the exterior region of eliminated intermediates.
  /// Disabling this reproduces the incorrect border fusion of Figure 4b.
  bool UseIndexExchange = true;

  /// Worker threads for the tiled executors. 0 resolves via the
  /// KF_THREADS environment variable, falling back to the hardware
  /// concurrency (see resolveThreadCount); 1 forces the serial path.
  int Threads = 0;

  /// Tile extents for the parallel decomposition. Non-positive width
  /// selects full-row tiles (best for the row-wise VM path);
  /// non-positive height selects a heuristic from the image height and
  /// thread count.
  int TileWidth = 0;
  int TileHeight = 0;

  /// Interior execution mode of the VM engines. Auto resolves via the
  /// KF_VM environment variable ("scalar", "span" or "jit"); when it is
  /// unset, Auto prefers a per-plan JIT artifact if the launch carries
  /// one and falls back to the lane-batched span mode (see resolveVmMode
  /// in ir/ExprVM.h). Scalar is the per-pixel escape hatch and the A/B
  /// baseline. All modes are bit-identical on every pipeline and border
  /// mode.
  VmMode Mode = VmMode::Auto;

  /// Tiling strategy of the fused VM engine. Auto resolves via the
  /// KF_TILING environment variable ("interior", "overlapped" or
  /// "tuned"), defaulting to the interior/halo split (see
  /// resolveTilingStrategy in ir/ExprVM.h). Overlapped trades redundant
  /// margin recompute for recursion-free, cache-resident tiles; Tuned
  /// lets the cost model pick strategy and tile shape per compiled plan.
  /// All strategies are bit-identical on every pipeline and border mode.
  TilingStrategy Tiling = TilingStrategy::Auto;

  /// Whether session plan compilation runs the interval-fact-gated
  /// bytecode optimizer (ir/VmOptimizer.h) over validated launches
  /// before JIT lowering. Auto resolves via the KF_OPT environment
  /// variable ("on" or "off"), defaulting to On; Off is the escape
  /// hatch executing the bytecode exactly as compiled. Optimized plans
  /// are bit-identical to unoptimized plans on every pipeline, mode,
  /// and tiling strategy.
  OptMode Opt = OptMode::Auto;

  /// Work-source tag charged for every tile this execution claims from a
  /// shared ThreadPool (see ThreadPool::registerSource); the pipeline
  /// server registers one source per tenant so concurrent frames
  /// interleave stride-fairly. 0 is the pool's default source. A pure
  /// scheduling hint: it never changes which pixels are computed, so it
  /// is deliberately excluded from hashExecutionOptions — sessions that
  /// differ only in Source share compiled plans.
  unsigned Source = 0;
};

/// Parses a tile specification "WxH" (e.g. "128x32"). Returns false --
/// leaving the outputs untouched -- unless both extents parse fully and
/// lie in [1, 65536].
bool parseTileSpec(const char *Text, int &TileW, int &TileH);

/// Resolves the effective tile extents of one launch over a
/// \p ImageW x \p ImageH image: explicit positive Options extents win,
/// then a well-formed KF_TILE environment value ("WxH", same range rules
/// as parseTileSpec, malformed values warned about once per process),
/// then the per-strategy default -- full rows with a height heuristic
/// for InteriorHalo, an L2-sized 128x32 block for Overlapped. Results
/// are clamped to the image.
void resolveTileSize(const ExecutionOptions &Options,
                     TilingStrategy Strategy, int ImageW, int ImageH,
                     unsigned Threads, int &TileW, int &TileH);

/// Allocates an image pool for \p P: one (empty) image slot per program
/// image, shaped per the image table. External inputs must be filled by
/// the caller before execution.
std::vector<Image> makeImagePool(const Program &P);

/// Executes every kernel of \p P unfused, in topological order, filling
/// the pool's non-input images. External inputs must be present. AST
/// engine (the semantic reference), tiled across Options.Threads.
void runUnfused(const Program &P, std::vector<Image> &Pool,
                const ExecutionOptions &Options = ExecutionOptions());

/// Executes every kernel of \p P unfused through the bytecode VM with
/// the interior/halo split and row-wise evaluation, tiled across
/// Options.Threads. Bit-identical to runUnfused.
void runUnfusedVm(const Program &P, std::vector<Image> &Pool,
                  const ExecutionOptions &Options);

/// Executes \p FP, writing only the fused kernels' destination outputs;
/// eliminated intermediates stay empty (that is the point of fusion).
/// AST engine: eliminated producers are re-evaluated recursively per
/// read, with index exchange at exterior positions.
void runFused(const FusedProgram &FP, std::vector<Image> &Pool,
              const ExecutionOptions &Options = ExecutionOptions());

/// Compiles fused kernel \p FK of \p FP into a staged bytecode program:
/// one subprogram per stage, reads of eliminated intermediates lowered
/// to offset-shifted stage calls. Stage order (and thus stage indices)
/// matches FK.Stages.
StagedVmProgram compileFusedKernel(const FusedProgram &FP,
                                   const FusedKernel &FK);

/// Executes \p FP through the staged bytecode VM: interior tiles run the
/// border-check-free fast path, halo tiles the index-exchange-correct
/// slow path. Bit-identical to runFused at any thread count -- the fast
/// path the benchmarks use for large images.
void runFusedVm(const FusedProgram &FP, std::vector<Image> &Pool,
                const ExecutionOptions &Options = ExecutionOptions());

/// Per-worker register scratch of the VM engines, grown on demand and
/// reusable across launches and frames. The serving layer (sim/Session.h)
/// keeps one per session so the streaming hot path performs no per-frame
/// scratch allocation.
struct VmScratch {
  std::vector<std::vector<float>> PixelRegs; ///< NumRegs floats per worker.
  /// Span-mode lane buffers: NumRegs * VmLaneWidth floats per worker
  /// (structure-of-arrays register frames, see runStagedVmSpan).
  std::vector<std::vector<float>> LaneRegs;
  /// Overlapped-strategy plane buffers: one margin-grown scratch plane
  /// per demanded (stage, channel) of a tile (see runOverlappedTile);
  /// empty under the interior/halo strategy.
  std::vector<std::vector<float>> PlaneRegs;

  /// Grows the per-worker vectors to at least the given float counts.
  void ensure(unsigned Threads, size_t PixelFloats, size_t LaneFloats,
              size_t PlaneFloats = 0);
};

/// The interior/halo split parameter of one fused launch: how far from the
/// border the staged program rooted at \p Root can reach. Mixed stage or
/// input extents void the interior entirely (every pixel is halo).
int fusedLaunchHalo(const StagedVmProgram &SP, uint16_t Root,
                    const ImageInfo &Info);

/// Fine-grained timing of one launch, split between the border-check-free
/// interior row path and the index-exchange halo pixel path. Collected
/// only on request (clock reads per row are not free); the tracing /
/// metrics layer asks for it when enabled. Interior + halo is CPU time
/// summed across workers, so it can exceed TotalMs (wall time) on
/// multi-threaded launches.
struct LaunchTiming {
  double TotalMs = 0.0;
  double InteriorMs = 0.0;
  double HaloMs = 0.0;
  /// The resolved interior mode the launch actually ran (never Auto), so
  /// the trace/metrics layers can split interior time scalar vs span.
  VmMode Mode = VmMode::Span;
  /// The resolved tiling strategy the launch actually ran (never Auto or
  /// Tuned: a schedule-less launch falls back to InteriorHalo).
  TilingStrategy Tiling = TilingStrategy::InteriorHalo;
  /// Overlapped strategy only: redundantly computed plane cells (the
  /// margins adjacent grown tiles both evaluate) and all evaluated cells,
  /// summed across tiles and channels.
  long long OverlapPixels = 0;
  long long ComputedPixels = 0;
};

/// Executes one compiled fused launch -- the staged program \p SP rooted
/// at stage \p Root with interior/halo split \p Halo -- writing the
/// destination image into \p Out *in place*. \p Out must already be shaped
/// like the destination; it is fully overwritten (no prior clear needed).
/// Building block of both runFusedVm (fresh buffers per call) and the
/// streaming session layer (recycled buffers, persistent pool + scratch).
/// A non-null \p Timing collects the wall time and the interior/halo CPU
/// split of this launch.
///
/// \p Jit is the launch's JIT artifact (compiled at plan time and cached
/// next to the plan, see sim/Session.h), or null. When the resolved mode
/// is Jit and no artifact was supplied, one is compiled on the fly from
/// shapes derived from \p Pool -- and if the validator-gated compilation
/// refuses, the launch falls back to the bit-identical span interpreter.
/// Under the overlapped tiling strategy interior tiles likewise run the
/// span engine (the JIT chains read pool images, not scratch planes); a
/// Jit request there degrades to Span, never to different results.
void runCompiledLaunch(const StagedVmProgram &SP, uint16_t Root, int Halo,
                       const std::vector<Image> &Pool, Image &Out,
                       const ExecutionOptions &Options, ThreadPool &TP,
                       VmScratch &Scratch, LaunchTiming *Timing = nullptr,
                       const JitProgram *Jit = nullptr);

/// Evaluates a single kernel of \p P at one pixel, reading inputs from
/// \p Pool (border handling per the kernel). Exposed for unit tests.
float evalKernelAt(const Program &P, KernelId Id,
                   const std::vector<Image> &Pool, int X, int Y,
                   int Channel);

} // namespace kf

#endif // KF_SIM_EXECUTOR_H
