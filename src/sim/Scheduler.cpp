//===- sim/Scheduler.cpp ----------------------------------------------------===//

#include "sim/Scheduler.h"

#include <algorithm>

using namespace kf;

unsigned FrameScheduler::addSession(size_t Capacity, uint64_t Weight,
                                    BackpressurePolicy Policy) {
  std::lock_guard<std::mutex> Lock(Mutex);
  unsigned Id = NextId++;
  SessionState &S = Sessions[Id];
  S.Capacity = Capacity ? Capacity : 1;
  S.Policy = Policy;
  S.StrideId = Sched.addSource(Weight);
  return Id;
}

void FrameScheduler::closeSession(unsigned Session) {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    auto It = Sessions.find(Session);
    if (It == Sessions.end())
      return;
    It->second.Closed = true;
  }
  // Blocked producers of this session must observe Closed and fail.
  SpaceCv.notify_all();
}

void FrameScheduler::removeSession(unsigned Session) {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = Sessions.find(Session);
  if (It != Sessions.end())
    Sessions.erase(It);
}

bool FrameScheduler::enqueue(unsigned Session, QueuedFrame Work) {
  std::unique_lock<std::mutex> Lock(Mutex);
  auto It = Sessions.find(Session);
  if (It == Sessions.end())
    return false;
  SessionState *S = &It->second;
  if (S->Closed || Stopped)
    return false;
  if (S->Queue.size() >= S->Capacity) {
    if (S->Policy == BackpressurePolicy::Reject) {
      ++S->Stats.Rejected;
      return false;
    }
    // Block until a slot frees. The session may close or the scheduler
    // stop while we wait; both unblock with failure. The map node is
    // stable across rehashing, but re-find after waking anyway in case
    // the session was removed outright.
    SpaceCv.wait(Lock, [&] {
      auto Found = Sessions.find(Session);
      if (Found == Sessions.end())
        return true;
      S = &Found->second;
      return Stopped || S->Closed || S->Queue.size() < S->Capacity;
    });
    if (Sessions.find(Session) == Sessions.end() || Stopped || S->Closed)
      return false;
  }
  Work.Enqueued = std::chrono::steady_clock::now();
  const bool WasIdle = S->Queue.empty() && !S->Busy;
  S->Queue.push_back(std::move(Work));
  ++S->Stats.Enqueued;
  S->Stats.MaxDepth = std::max(S->Stats.MaxDepth, S->Queue.size());
  if (WasIdle) {
    // The session re-enters the stride race at parity with the sessions
    // currently competing, not with the pass it left off at.
    std::vector<unsigned> Runnable;
    for (const auto &[Id, Other] : Sessions)
      if (Id != Session && !Other.Queue.empty() && !Other.Busy)
        Runnable.push_back(Other.StrideId);
    Sched.activate(S->StrideId, Runnable);
  }
  Lock.unlock();
  WorkCv.notify_one();
  return true;
}

long long FrameScheduler::pickLocked() const {
  long long Best = -1;
  uint64_t BestPass = 0;
  for (const auto &[Id, S] : Sessions) {
    if (S.Busy || S.Queue.empty())
      continue;
    uint64_t Pass = Sched.pass(S.StrideId);
    // Ties break to the lowest session id so the dispatch sequence is a
    // pure function of history (the map iterates in hash order).
    if (Best < 0 || Pass < BestPass ||
        (Pass == BestPass && Id < static_cast<unsigned>(Best))) {
      Best = Id;
      BestPass = Pass;
    }
  }
  return Best;
}

void FrameScheduler::popLocked(unsigned Session, QueuedFrame &Work) {
  SessionState &S = Sessions[Session];
  Work = std::move(S.Queue.front());
  S.Queue.pop_front();
  S.Busy = true;
  ++S.Stats.Dispatched;
  Sched.charge(S.StrideId);
}

bool FrameScheduler::dequeue(unsigned &Session, QueuedFrame &Work) {
  std::unique_lock<std::mutex> Lock(Mutex);
  while (true) {
    long long Picked = pickLocked();
    if (Picked >= 0) {
      Session = static_cast<unsigned>(Picked);
      popLocked(Session, Work);
      Lock.unlock();
      SpaceCv.notify_all(); // A queue slot freed.
      return true;
    }
    if (Stopped)
      return false;
    WorkCv.wait(Lock, [&] { return Stopped || pickLocked() >= 0; });
  }
}

bool FrameScheduler::tryDequeue(unsigned &Session, QueuedFrame &Work) {
  std::unique_lock<std::mutex> Lock(Mutex);
  long long Picked = pickLocked();
  if (Picked < 0)
    return false;
  Session = static_cast<unsigned>(Picked);
  popLocked(Session, Work);
  Lock.unlock();
  SpaceCv.notify_all();
  return true;
}

void FrameScheduler::complete(unsigned Session) {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    auto It = Sessions.find(Session);
    if (It == Sessions.end())
      return;
    It->second.Busy = false;
    ++It->second.Stats.Completed;
  }
  // The session's next queued frame became dispatchable, a drainer may
  // now see it idle, and (Block policy) its producers already woke when
  // the frame was dequeued.
  WorkCv.notify_all();
  IdleCv.notify_all();
}

void FrameScheduler::stop() {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Stopped = true;
  }
  WorkCv.notify_all();
  SpaceCv.notify_all();
  IdleCv.notify_all();
}

void FrameScheduler::waitSessionIdle(unsigned Session) {
  std::unique_lock<std::mutex> Lock(Mutex);
  IdleCv.wait(Lock, [&] {
    auto It = Sessions.find(Session);
    return It == Sessions.end() || idleLocked(It->second);
  });
}

void FrameScheduler::waitAllIdle() {
  std::unique_lock<std::mutex> Lock(Mutex);
  IdleCv.wait(Lock, [&] {
    for (const auto &[Id, S] : Sessions)
      if (!idleLocked(S))
        return false;
    return true;
  });
}

FrameQueueStats FrameScheduler::queueStats(unsigned Session) const {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = Sessions.find(Session);
  if (It == Sessions.end())
    return FrameQueueStats();
  FrameQueueStats Stats = It->second.Stats;
  Stats.Depth = It->second.Queue.size();
  return Stats;
}
