//===- sim/Metrics.cpp ------------------------------------------------------===//

#include "sim/Metrics.h"

#include "sim/CostModel.h"
#include "support/StringUtils.h"
#include "support/TablePrinter.h"

#include <algorithm>
#include <cmath>

using namespace kf;

std::atomic<bool> MetricsRegistry::EnabledFlag{false};

MetricsRegistry &MetricsRegistry::global() {
  static MetricsRegistry Registry;
  return Registry;
}

void MetricsRegistry::setEnabled(bool Enabled) {
  EnabledFlag.store(Enabled, std::memory_order_relaxed);
}

DeviceSpec MetricsRegistry::referenceDevice() { return DeviceSpec::gtx745(); }

LaunchModelRecord &
MetricsRegistry::findOrCreate(const std::string &Program,
                              const std::string &Launch) {
  for (LaunchModelRecord &Record : Records)
    if (Record.Program == Program && Record.Launch == Launch)
      return Record;
  LaunchModelRecord Record;
  Record.Program = Program;
  Record.Launch = Launch;
  Records.push_back(std::move(Record));
  return Records.back();
}

void MetricsRegistry::recordPrediction(const std::string &Program,
                                       const FusedProgram &FP) {
  if (!enabled())
    return;
  DeviceSpec Device = referenceDevice();
  CostModelParams Params;
  ProgramStats Stats = accountFusedProgram(FP);
  std::lock_guard<std::mutex> Lock(Mutex);
  for (const LaunchStats &LS : Stats.Launches) {
    LaunchModelRecord &Record = findOrCreate(Program, LS.Name);
    Record.Stages = LS.NumStages;
    Record.Pixels = LS.OutputPixels;
    Record.PredictedMs = estimateLaunchTimeMs(LS, Device, Params);
    // Milliseconds on the reference device expressed in its core cycles.
    Record.PredictedCycles =
        Record.PredictedMs * 1e-3 * Device.CoreClockGHz * 1e9;
  }
}

void MetricsRegistry::recordLaunch(const std::string &Program,
                                   const std::string &Launch,
                                   double MeasuredMs, double InteriorMs,
                                   double HaloMs, VmMode Mode,
                                   TilingStrategy Tiling) {
  if (!enabled())
    return;
  std::lock_guard<std::mutex> Lock(Mutex);
  LaunchModelRecord &Record = findOrCreate(Program, Launch);
  ++Record.Runs;
  Record.MeasuredMs += MeasuredMs;
  Record.InteriorMs += InteriorMs;
  Record.HaloMs += HaloMs;
  if (resolveVmMode(Mode) == VmMode::Span) {
    ++Record.SpanRuns;
    Record.SpanInteriorMs += InteriorMs;
  } else {
    ++Record.ScalarRuns;
    Record.ScalarInteriorMs += InteriorMs;
  }
  if (Tiling == TilingStrategy::Overlapped) {
    ++Record.OverlappedRuns;
    Record.OverlappedMs += MeasuredMs;
  } else {
    ++Record.InteriorTilingRuns;
    Record.InteriorTilingMs += MeasuredMs;
  }
}

void MetricsRegistry::recordTunerDecision(
    const TunerDecisionRecord &Decision) {
  if (!enabled())
    return;
  std::lock_guard<std::mutex> Lock(Mutex);
  for (TunerDecisionRecord &Existing : Decisions)
    if (Existing.Program == Decision.Program) {
      Existing = Decision;
      return;
    }
  Decisions.push_back(Decision);
}

std::vector<TunerDecisionRecord> MetricsRegistry::tunerDecisions() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Decisions;
}

ServerSessionRecord &
MetricsRegistry::findOrCreateSession(const std::string &Session) {
  for (ServerSessionRecord &Existing : Sessions)
    if (Existing.Session == Session)
      return Existing;
  Sessions.emplace_back();
  Sessions.back().Session = Session;
  return Sessions.back();
}

void MetricsRegistry::recordServerFrame(const std::string &Session,
                                        double QueueMs, double ExecMs) {
  if (!enabled())
    return;
  std::lock_guard<std::mutex> Lock(Mutex);
  ServerSessionRecord &Record = findOrCreateSession(Session);
  ++Record.Frames;
  Record.QueueMs += QueueMs;
  Record.ExecMs += ExecMs;
  Record.MaxLatencyMs = std::max(Record.MaxLatencyMs, QueueMs + ExecMs);
}

void MetricsRegistry::recordServerRejection(const std::string &Session) {
  if (!enabled())
    return;
  std::lock_guard<std::mutex> Lock(Mutex);
  ++findOrCreateSession(Session).Rejected;
}

std::vector<ServerSessionRecord> MetricsRegistry::serverSessions() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Sessions;
}

std::vector<LaunchModelRecord> MetricsRegistry::records() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Records;
}

double MetricsRegistry::geomeanRatio() const {
  std::vector<LaunchModelRecord> Snapshot = records();
  double LogSum = 0.0;
  unsigned Count = 0;
  for (const LaunchModelRecord &Record : Snapshot) {
    double Ratio = Record.ratio();
    if (Ratio > 0.0) {
      LogSum += std::log(Ratio);
      ++Count;
    }
  }
  return Count ? std::exp(LogSum / Count) : 0.0;
}

std::string MetricsRegistry::renderTable() const {
  std::vector<LaunchModelRecord> Snapshot = records();
  std::vector<TunerDecisionRecord> Tuned = tunerDecisions();
  if (Snapshot.empty() && Tuned.empty())
    return "";
  std::string Result;
  if (!Snapshot.empty()) {
    TablePrinter Table({"program", "launch", "stages", "pixels", "pred Mcyc",
                        "pred ms", "runs", "meas ms", "interior ms", "halo ms",
                        "vm", "tiling", "pred/meas"});
    for (const LaunchModelRecord &Record : Snapshot) {
      double Runs = Record.Runs ? static_cast<double>(Record.Runs) : 1.0;
      // The vm column names the interior engine; a launch measured in both
      // modes shows the span-over-scalar interior speedup instead.
      std::string Vm = "-";
      if (Record.spanOverScalar() > 0.0)
        Vm = formatDouble(Record.spanOverScalar(), 2) + "x";
      else if (Record.SpanRuns)
        Vm = "span";
      else if (Record.ScalarRuns)
        Vm = "scalar";
      // Likewise the tiling column: strategy name, or the overlapped
      // speedup when the launch was A/B-measured under both strategies.
      std::string Tiling = "-";
      if (Record.overlappedSpeedup() > 0.0)
        Tiling = formatDouble(Record.overlappedSpeedup(), 2) + "x";
      else if (Record.OverlappedRuns)
        Tiling = "overlap";
      else if (Record.InteriorTilingRuns)
        Tiling = "interior";
      Table.addRow({Record.Program, Record.Launch,
                    std::to_string(Record.Stages),
                    std::to_string(Record.Pixels),
                    formatDouble(Record.PredictedCycles / 1e6, 3),
                    formatDouble(Record.PredictedMs, 4),
                    std::to_string(Record.Runs),
                    formatDouble(Record.measuredMeanMs(), 4),
                    formatDouble(Record.InteriorMs / Runs, 4),
                    formatDouble(Record.HaloMs / Runs, 4), Vm, Tiling,
                    Record.ratio() > 0.0 ? formatDouble(Record.ratio(), 3)
                                         : std::string("-")});
    }
    Result += Table.render();
    double Geomean = geomeanRatio();
    if (Geomean > 0.0) {
      Result += "geomean predicted/measured ratio: ";
      Result += formatDouble(Geomean, 3);
      Result += "\n";
    }
  }
  if (!Tuned.empty()) {
    TablePrinter Tuner({"program", "tuned tiling", "tile", "pred ms",
                        "candidates"});
    for (const TunerDecisionRecord &D : Tuned)
      Tuner.addRow({D.Program, tilingStrategyName(D.Strategy),
                    std::to_string(D.TileWidth) + "x" +
                        std::to_string(D.TileHeight),
                    formatDouble(D.PredictedMs, 4),
                    std::to_string(D.Candidates)});
    Result += Tuner.render();
  }
  std::vector<ServerSessionRecord> Serving = serverSessions();
  if (!Serving.empty()) {
    TablePrinter Server({"session", "frames", "rejected", "queue ms",
                         "exec ms", "mean lat ms", "max lat ms"});
    for (const ServerSessionRecord &S : Serving) {
      double Frames = S.Frames ? static_cast<double>(S.Frames) : 1.0;
      Server.addRow({S.Session, std::to_string(S.Frames),
                     std::to_string(S.Rejected),
                     formatDouble(S.QueueMs / Frames, 3),
                     formatDouble(S.ExecMs / Frames, 3),
                     formatDouble(S.meanLatencyMs(), 3),
                     formatDouble(S.MaxLatencyMs, 3)});
    }
    Result += Server.render();
  }
  return Result;
}

/// Minimal JSON string escape (names are identifiers, but be safe).
static std::string jsonEscape(const std::string &Text) {
  std::string Out;
  Out.reserve(Text.size());
  for (char C : Text) {
    if (C == '"' || C == '\\')
      Out += '\\';
    Out += C;
  }
  return Out;
}

std::string MetricsRegistry::toJson(const std::string &Indent) const {
  std::vector<LaunchModelRecord> Snapshot = records();
  std::string Out = "[";
  bool First = true;
  for (const LaunchModelRecord &Record : Snapshot) {
    if (!First)
      Out += ",";
    First = false;
    Out += "\n" + Indent + "{";
    Out += "\"program\": \"" + jsonEscape(Record.Program) + "\", ";
    Out += "\"launch\": \"" + jsonEscape(Record.Launch) + "\", ";
    Out += "\"stages\": " + std::to_string(Record.Stages) + ", ";
    Out += "\"pixels\": " + std::to_string(Record.Pixels) + ", ";
    Out += "\"predicted_cycles\": " + formatDouble(Record.PredictedCycles, 1) +
           ", ";
    Out += "\"predicted_ms\": " + formatDouble(Record.PredictedMs, 6) + ", ";
    Out += "\"runs\": " + std::to_string(Record.Runs) + ", ";
    Out += "\"measured_mean_ms\": " +
           formatDouble(Record.measuredMeanMs(), 6) + ", ";
    Out += "\"interior_ms\": " + formatDouble(Record.InteriorMs, 6) + ", ";
    Out += "\"halo_ms\": " + formatDouble(Record.HaloMs, 6) + ", ";
    Out += "\"span_runs\": " + std::to_string(Record.SpanRuns) + ", ";
    Out += "\"scalar_runs\": " + std::to_string(Record.ScalarRuns) + ", ";
    Out += "\"interior_span_ms\": " +
           formatDouble(Record.SpanInteriorMs, 6) + ", ";
    Out += "\"interior_scalar_ms\": " +
           formatDouble(Record.ScalarInteriorMs, 6) + ", ";
    Out += "\"span_over_scalar\": " +
           formatDouble(Record.spanOverScalar(), 6) + ", ";
    Out += "\"overlapped_runs\": " + std::to_string(Record.OverlappedRuns) +
           ", ";
    Out += "\"interior_tiling_runs\": " +
           std::to_string(Record.InteriorTilingRuns) + ", ";
    Out += "\"overlapped_ms\": " + formatDouble(Record.OverlappedMs, 6) +
           ", ";
    Out += "\"interior_tiling_ms\": " +
           formatDouble(Record.InteriorTilingMs, 6) + ", ";
    Out += "\"overlapped_speedup\": " +
           formatDouble(Record.overlappedSpeedup(), 6) + ", ";
    Out += "\"ratio\": " + formatDouble(Record.ratio(), 6);
    Out += "}";
  }
  Out += "\n" + (Indent.size() >= 2 ? Indent.substr(2) : std::string()) + "]";
  return Out;
}

void MetricsRegistry::clear() {
  std::lock_guard<std::mutex> Lock(Mutex);
  Records.clear();
  Decisions.clear();
  Sessions.clear();
}
