//===- sim/Executor.cpp -----------------------------------------------------===//

#include "sim/Executor.h"

#include "image/Border.h"
#include "support/Error.h"

#include <cassert>
#include <cmath>

using namespace kf;

namespace {

/// Resolves reads of a kernel's inputs at absolute coordinates.
class InputSource {
public:
  virtual ~InputSource() = default;
  virtual float read(int InputIdx, int X, int Y, int Channel) = 0;
};

/// Stencil-iteration bindings while evaluating a Stencil element.
struct StencilEnv {
  int Dx = 0;
  int Dy = 0;
  float MaskVal = 0.0f;
};

/// Evaluates kernel body expressions.
class ExprEvaluator {
public:
  ExprEvaluator(const Program &P, InputSource &Source)
      : P(P), Source(Source) {}

  float eval(const Expr *E, int X, int Y, int Channel,
             const StencilEnv *Env) {
    switch (E->Kind) {
    case ExprKind::FloatConst:
      return E->Value;
    case ExprKind::CoordX:
      return static_cast<float>(X);
    case ExprKind::CoordY:
      return static_cast<float>(Y);
    case ExprKind::InputAt:
      return Source.read(E->InputIdx, X + E->OffsetX, Y + E->OffsetY,
                         E->Channel < 0 ? Channel : E->Channel);
    case ExprKind::StencilInput:
      assert(Env && "window access outside a stencil");
      return Source.read(E->InputIdx, X + Env->Dx, Y + Env->Dy,
                         E->Channel < 0 ? Channel : E->Channel);
    case ExprKind::MaskValue:
      assert(Env && "mask value outside a stencil");
      return Env->MaskVal;
    case ExprKind::StencilOffX:
      assert(Env && "stencil offset outside a stencil");
      return static_cast<float>(Env->Dx);
    case ExprKind::StencilOffY:
      assert(Env && "stencil offset outside a stencil");
      return static_cast<float>(Env->Dy);
    case ExprKind::Binary: {
      float L = eval(E->Lhs, X, Y, Channel, Env);
      float R = eval(E->Rhs, X, Y, Channel, Env);
      switch (E->BinaryOp) {
      case BinOp::Add:
        return L + R;
      case BinOp::Sub:
        return L - R;
      case BinOp::Mul:
        return L * R;
      case BinOp::Div:
        return L / R;
      case BinOp::Min:
        return std::min(L, R);
      case BinOp::Max:
        return std::max(L, R);
      case BinOp::Pow:
        return std::pow(L, R);
      case BinOp::CmpLT:
        return L < R ? 1.0f : 0.0f;
      case BinOp::CmpGT:
        return L > R ? 1.0f : 0.0f;
      }
      KF_UNREACHABLE("unknown binary op");
    }
    case ExprKind::Unary: {
      float V = eval(E->Lhs, X, Y, Channel, Env);
      switch (E->UnaryOp) {
      case UnOp::Neg:
        return -V;
      case UnOp::Abs:
        return std::abs(V);
      case UnOp::Sqrt:
        return std::sqrt(V);
      case UnOp::Exp:
        return std::exp(V);
      case UnOp::Log:
        return std::log(V);
      case UnOp::Floor:
        return std::floor(V);
      }
      KF_UNREACHABLE("unknown unary op");
    }
    case ExprKind::Select:
      return eval(E->Cond, X, Y, Channel, Env) != 0.0f
                 ? eval(E->Lhs, X, Y, Channel, Env)
                 : eval(E->Rhs, X, Y, Channel, Env);
    case ExprKind::Stencil: {
      const Mask &M = P.mask(E->MaskIdx);
      bool First = true;
      float Acc = 0.0f;
      for (int Dy = -M.haloY(); Dy <= M.haloY(); ++Dy)
        for (int Dx = -M.haloX(); Dx <= M.haloX(); ++Dx) {
          StencilEnv Elem{Dx, Dy, M.at(Dx, Dy)};
          float V = eval(E->Lhs, X, Y, Channel, &Elem);
          if (First) {
            Acc = V;
            First = false;
            continue;
          }
          switch (E->Reduce) {
          case ReduceOp::Sum:
            Acc += V;
            break;
          case ReduceOp::Product:
            Acc *= V;
            break;
          case ReduceOp::Min:
            Acc = std::min(Acc, V);
            break;
          case ReduceOp::Max:
            Acc = std::max(Acc, V);
            break;
          }
        }
      return Acc;
    }
    }
    KF_UNREACHABLE("unknown expression kind");
  }

private:
  const Program &P;
  InputSource &Source;
};

/// Reads kernel inputs straight from the image pool with the kernel's
/// border handling: the unfused semantics.
class PoolSource : public InputSource {
public:
  PoolSource(const Program &P, const Kernel &K,
             const std::vector<Image> &Pool)
      : P(P), K(K), Pool(Pool) {}

  float read(int InputIdx, int X, int Y, int Channel) override {
    const Image &Img = Pool[K.Inputs[InputIdx]];
    assert(!Img.empty() && "reading an unmaterialized image");
    (void)P;
    return sampleWithBorder(Img, X, Y, Channel, K.Border, K.BorderConstant);
  }

private:
  const Program &P;
  const Kernel &K;
  const std::vector<Image> &Pool;
};

/// Fused-kernel evaluation: reads of eliminated intermediates recursively
/// re-evaluate the producer stage, applying the index exchange of Section
/// IV-B to exterior coordinates.
class FusedEvaluator {
public:
  FusedEvaluator(const FusedProgram &FP, const FusedKernel &FK,
                 const std::vector<Image> &Pool,
                 const ExecutionOptions &Options)
      : P(*FP.Source), FK(FK), Pool(Pool), Options(Options) {}

  /// Value of stage kernel \p Id at (X, Y, Channel). Coordinates must be
  /// inside the image for the destination; intermediate requests handle
  /// the exterior via index exchange at the call site (stageRead).
  float evalStage(KernelId Id, int X, int Y, int Channel) {
    const Kernel &K = P.kernel(Id);
    StageSource Source(*this, K);
    ExprEvaluator Eval(P, Source);
    return Eval.eval(K.Body, X, Y, Channel, nullptr);
  }

private:
  /// Resolves reads performed by stage \p Requesting.
  class StageSource : public InputSource {
  public:
    StageSource(FusedEvaluator &Parent, const Kernel &Requesting)
        : Parent(Parent), Requesting(Requesting) {}

    float read(int InputIdx, int X, int Y, int Channel) override {
      return Parent.stageRead(Requesting, Requesting.Inputs[InputIdx], X, Y,
                              Channel);
    }

  private:
    FusedEvaluator &Parent;
    const Kernel &Requesting;
  };

  float stageRead(const Kernel &Requesting, ImageId Img, int X, int Y,
                  int Channel) {
    // Intermediate eliminated by this fused kernel? (Destination outputs
    // are materialized, not eliminated.)
    const FusedStage *Producer = nullptr;
    for (const FusedStage &Stage : FK.Stages)
      if (P.kernel(Stage.Kernel).Output == Img &&
          !FK.isDestination(Stage.Kernel)) {
        Producer = &Stage;
        break;
      }

    if (!Producer) {
      // Materialized image (pipeline input or another fused kernel's
      // output): plain bordered read.
      const Image &Buffer = Pool[Img];
      assert(!Buffer.empty() && "reading an unmaterialized image");
      return sampleWithBorder(Buffer, X, Y, Channel, Requesting.Border,
                              Requesting.BorderConstant);
    }

    const ImageInfo &Info = P.image(Img);
    bool Exterior = X < 0 || X >= Info.Width || Y < 0 || Y >= Info.Height;
    if (Exterior && Options.UseIndexExchange) {
      // Index exchange (Section IV-B): exterior accesses to the
      // eliminated intermediate are exchanged according to the border
      // handling specified in the *consuming* kernel, then the producer
      // is evaluated at the exchanged position.
      int EX = exchangeIndex(X, Info.Width, Requesting.Border);
      int EY = exchangeIndex(Y, Info.Height, Requesting.Border);
      if (EX < 0 || EY < 0)
        return Requesting.BorderConstant;
      X = EX;
      Y = EY;
    }
    // Without the exchange the producer is (incorrectly) evaluated at the
    // raw exterior position -- reproducing Figure 4b.
    return evalStage(Producer->Kernel, X, Y, Channel);
  }

  const Program &P;
  const FusedKernel &FK;
  const std::vector<Image> &Pool;
  ExecutionOptions Options;
};

} // namespace

std::vector<Image> kf::makeImagePool(const Program &P) {
  return std::vector<Image>(P.numImages());
}

static void checkExternalInputs(const Program &P,
                                const std::vector<Image> &Pool) {
  for (ImageId Id : P.externalInputs()) {
    const Image &Img = Pool[Id];
    const ImageInfo &Info = P.image(Id);
    if (Img.empty() || Img.width() != Info.Width ||
        Img.height() != Info.Height || Img.channels() != Info.Channels)
      reportFatalError("external input '" + Info.Name +
                       "' missing or mis-shaped in the image pool");
  }
}

void kf::runUnfused(const Program &P, std::vector<Image> &Pool) {
  assert(Pool.size() == P.numImages() && "pool size mismatch");
  checkExternalInputs(P, Pool);

  std::optional<std::vector<Digraph::NodeId>> Order =
      P.buildKernelDag().topologicalOrder();
  assert(Order && "kernel DAG has a cycle");
  for (KernelId Id : *Order) {
    const Kernel &K = P.kernel(Id);
    const ImageInfo &Info = P.image(K.Output);
    Image Out(Info.Width, Info.Height, Info.Channels);
    PoolSource Source(P, K, Pool);
    ExprEvaluator Eval(P, Source);
    for (int Y = 0; Y != Info.Height; ++Y)
      for (int X = 0; X != Info.Width; ++X)
        for (int Ch = 0; Ch != Info.Channels; ++Ch)
          Out.at(X, Y, Ch) = Eval.eval(K.Body, X, Y, Ch, nullptr);
    Pool[K.Output] = std::move(Out);
  }
}

void kf::runFused(const FusedProgram &FP, std::vector<Image> &Pool,
                  const ExecutionOptions &Options) {
  const Program &P = *FP.Source;
  assert(Pool.size() == P.numImages() && "pool size mismatch");
  checkExternalInputs(P, Pool);

  for (const FusedKernel &FK : FP.Kernels) {
    FusedEvaluator Evaluator(FP, FK, Pool, Options);
    // One global output per destination (a single one under the paper's
    // rules; several under the multi-destination extension).
    for (KernelId DestId : FK.Destinations) {
      const Kernel &Dest = P.kernel(DestId);
      const ImageInfo &Info = P.image(Dest.Output);
      Image Out(Info.Width, Info.Height, Info.Channels);
      for (int Y = 0; Y != Info.Height; ++Y)
        for (int X = 0; X != Info.Width; ++X)
          for (int Ch = 0; Ch != Info.Channels; ++Ch)
            Out.at(X, Y, Ch) = Evaluator.evalStage(DestId, X, Y, Ch);
      Pool[Dest.Output] = std::move(Out);
    }
  }
}

float kf::evalKernelAt(const Program &P, KernelId Id,
                       const std::vector<Image> &Pool, int X, int Y,
                       int Channel) {
  const Kernel &K = P.kernel(Id);
  PoolSource Source(P, K, Pool);
  ExprEvaluator Eval(P, Source);
  return Eval.eval(K.Body, X, Y, Channel, nullptr);
}
