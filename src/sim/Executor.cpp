//===- sim/Executor.cpp -----------------------------------------------------===//

#include "sim/Executor.h"

#include "jit/JitProgram.h"

#include "image/Border.h"
#include "sim/Metrics.h"
#include "support/Error.h"
#include "support/ThreadPool.h"
#include "support/Trace.h"

#include "sim/Tuner.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

using namespace kf;

namespace {

/// Resolves reads of a kernel's inputs at absolute coordinates.
class InputSource {
public:
  virtual ~InputSource() = default;
  virtual float read(int InputIdx, int X, int Y, int Channel) = 0;
};

/// Stencil-iteration bindings while evaluating a Stencil element.
struct StencilEnv {
  int Dx = 0;
  int Dy = 0;
  float MaskVal = 0.0f;
};

/// Evaluates kernel body expressions.
class ExprEvaluator {
public:
  ExprEvaluator(const Program &P, InputSource &Source)
      : P(P), Source(Source) {}

  float eval(const Expr *E, int X, int Y, int Channel,
             const StencilEnv *Env) {
    switch (E->Kind) {
    case ExprKind::FloatConst:
      return E->Value;
    case ExprKind::CoordX:
      return static_cast<float>(X);
    case ExprKind::CoordY:
      return static_cast<float>(Y);
    case ExprKind::InputAt:
      return Source.read(E->InputIdx, X + E->OffsetX, Y + E->OffsetY,
                         E->Channel < 0 ? Channel : E->Channel);
    case ExprKind::StencilInput:
      assert(Env && "window access outside a stencil");
      return Source.read(E->InputIdx, X + Env->Dx, Y + Env->Dy,
                         E->Channel < 0 ? Channel : E->Channel);
    case ExprKind::MaskValue:
      assert(Env && "mask value outside a stencil");
      return Env->MaskVal;
    case ExprKind::StencilOffX:
      assert(Env && "stencil offset outside a stencil");
      return static_cast<float>(Env->Dx);
    case ExprKind::StencilOffY:
      assert(Env && "stencil offset outside a stencil");
      return static_cast<float>(Env->Dy);
    case ExprKind::Binary: {
      float L = eval(E->Lhs, X, Y, Channel, Env);
      float R = eval(E->Rhs, X, Y, Channel, Env);
      switch (E->BinaryOp) {
      case BinOp::Add:
        return L + R;
      case BinOp::Sub:
        return L - R;
      case BinOp::Mul:
        return L * R;
      case BinOp::Div:
        return L / R;
      case BinOp::Min:
        return std::min(L, R);
      case BinOp::Max:
        return std::max(L, R);
      case BinOp::Pow:
        return std::pow(L, R);
      case BinOp::CmpLT:
        return L < R ? 1.0f : 0.0f;
      case BinOp::CmpGT:
        return L > R ? 1.0f : 0.0f;
      }
      KF_UNREACHABLE("unknown binary op");
    }
    case ExprKind::Unary: {
      float V = eval(E->Lhs, X, Y, Channel, Env);
      switch (E->UnaryOp) {
      case UnOp::Neg:
        return -V;
      case UnOp::Abs:
        return std::abs(V);
      case UnOp::Sqrt:
        return std::sqrt(V);
      case UnOp::Exp:
        return std::exp(V);
      case UnOp::Log:
        return std::log(V);
      case UnOp::Floor:
        return std::floor(V);
      }
      KF_UNREACHABLE("unknown unary op");
    }
    case ExprKind::Select:
      return eval(E->Cond, X, Y, Channel, Env) != 0.0f
                 ? eval(E->Lhs, X, Y, Channel, Env)
                 : eval(E->Rhs, X, Y, Channel, Env);
    case ExprKind::Stencil: {
      const Mask &M = P.mask(E->MaskIdx);
      bool First = true;
      float Acc = 0.0f;
      for (int Dy = -M.haloY(); Dy <= M.haloY(); ++Dy)
        for (int Dx = -M.haloX(); Dx <= M.haloX(); ++Dx) {
          StencilEnv Elem{Dx, Dy, M.at(Dx, Dy)};
          float V = eval(E->Lhs, X, Y, Channel, &Elem);
          if (First) {
            Acc = V;
            First = false;
            continue;
          }
          switch (E->Reduce) {
          case ReduceOp::Sum:
            Acc += V;
            break;
          case ReduceOp::Product:
            Acc *= V;
            break;
          case ReduceOp::Min:
            Acc = std::min(Acc, V);
            break;
          case ReduceOp::Max:
            Acc = std::max(Acc, V);
            break;
          }
        }
      return Acc;
    }
    }
    KF_UNREACHABLE("unknown expression kind");
  }

private:
  const Program &P;
  InputSource &Source;
};

/// Reads kernel inputs straight from the image pool with the kernel's
/// border handling: the unfused semantics.
class PoolSource : public InputSource {
public:
  PoolSource(const Kernel &K, const std::vector<Image> &Pool)
      : K(K), Pool(Pool) {}

  float read(int InputIdx, int X, int Y, int Channel) override {
    const Image &Img = Pool[K.Inputs[InputIdx]];
    assert(!Img.empty() && "reading an unmaterialized image");
    return sampleWithBorder(Img, X, Y, Channel, K.Border, K.BorderConstant);
  }

private:
  const Kernel &K;
  const std::vector<Image> &Pool;
};

/// Fused-kernel evaluation: reads of eliminated intermediates recursively
/// re-evaluate the producer stage, applying the index exchange of Section
/// IV-B to exterior coordinates.
class FusedEvaluator {
public:
  FusedEvaluator(const FusedProgram &FP, const FusedKernel &FK,
                 const std::vector<Image> &Pool,
                 const ExecutionOptions &Options)
      : P(*FP.Source), Pool(Pool), Options(Options) {
    // Image -> eliminated producer stage, resolved once per fused
    // kernel. (Destination outputs are materialized, not eliminated.)
    EliminatedProducer.assign(P.numImages(), nullptr);
    for (const FusedStage &Stage : FK.Stages)
      if (!FK.isDestination(Stage.Kernel))
        EliminatedProducer[P.kernel(Stage.Kernel).Output] = &Stage;
  }

  /// Value of stage kernel \p Id at (X, Y, Channel). Coordinates must be
  /// inside the image for the destination; intermediate requests handle
  /// the exterior via index exchange at the call site (stageRead).
  float evalStage(KernelId Id, int X, int Y, int Channel) const {
    const Kernel &K = P.kernel(Id);
    StageSource Source(*this, K);
    ExprEvaluator Eval(P, Source);
    return Eval.eval(K.Body, X, Y, Channel, nullptr);
  }

private:
  /// Resolves reads performed by stage \p Requesting.
  class StageSource : public InputSource {
  public:
    StageSource(const FusedEvaluator &Parent, const Kernel &Requesting)
        : Parent(Parent), Requesting(Requesting) {}

    float read(int InputIdx, int X, int Y, int Channel) override {
      return Parent.stageRead(Requesting, Requesting.Inputs[InputIdx], X, Y,
                              Channel);
    }

  private:
    const FusedEvaluator &Parent;
    const Kernel &Requesting;
  };

  float stageRead(const Kernel &Requesting, ImageId Img, int X, int Y,
                  int Channel) const {
    const FusedStage *Producer = EliminatedProducer[Img];
    if (!Producer) {
      // Materialized image (pipeline input or another fused kernel's
      // output): plain bordered read.
      const Image &Buffer = Pool[Img];
      assert(!Buffer.empty() && "reading an unmaterialized image");
      return sampleWithBorder(Buffer, X, Y, Channel, Requesting.Border,
                              Requesting.BorderConstant);
    }

    const ImageInfo &Info = P.image(Img);
    bool Exterior = X < 0 || X >= Info.Width || Y < 0 || Y >= Info.Height;
    if (Exterior && Options.UseIndexExchange) {
      // Index exchange (Section IV-B): exterior accesses to the
      // eliminated intermediate are exchanged according to the border
      // handling specified in the *consuming* kernel, then the producer
      // is evaluated at the exchanged position.
      int EX = exchangeIndex(X, Info.Width, Requesting.Border);
      int EY = exchangeIndex(Y, Info.Height, Requesting.Border);
      if (EX < 0 || EY < 0)
        return Requesting.BorderConstant;
      X = EX;
      Y = EY;
    }
    // Without the exchange the producer is (incorrectly) evaluated at the
    // raw exterior position -- reproducing Figure 4b.
    return evalStage(Producer->Kernel, X, Y, Channel);
  }

  const Program &P;
  const std::vector<Image> &Pool;
  ExecutionOptions Options;
  std::vector<const FusedStage *> EliminatedProducer;
};

//===--------------------------------------------------------------------===//
// Tiled parallel driver
//===--------------------------------------------------------------------===//

/// Row-band heuristic: enough tiles to load-balance interior vs halo
/// work without drowning in scheduling overhead.
int defaultTileHeight(int Height, unsigned Threads) {
  int Bands = static_cast<int>(Threads) * 4;
  return std::clamp(Height / std::max(Bands, 1), 1, 64);
}

} // namespace

bool kf::parseTileSpec(const char *Text, int &TileW, int &TileH) {
  if (!Text || !*Text)
    return false;
  // strtol skips leading whitespace and accepts a sign; the documented
  // grammar is strictly digits 'x' digits, so both components must start
  // with a digit.
  if (!std::isdigit(static_cast<unsigned char>(Text[0])))
    return false;
  char *End = nullptr;
  errno = 0;
  long W = std::strtol(Text, &End, 10);
  if (End == Text || *End != 'x' || errno == ERANGE)
    return false;
  const char *HText = End + 1;
  if (!std::isdigit(static_cast<unsigned char>(HText[0])))
    return false;
  errno = 0;
  long H = std::strtol(HText, &End, 10);
  if (End == HText || *End != '\0' || errno == ERANGE)
    return false;
  if (W < 1 || W > 65536 || H < 1 || H > 65536)
    return false;
  TileW = static_cast<int>(W);
  TileH = static_cast<int>(H);
  return true;
}

void kf::resolveTileSize(const ExecutionOptions &Options,
                         TilingStrategy Strategy, int ImageW, int ImageH,
                         unsigned Threads, int &TileW, int &TileH) {
  int W = Options.TileWidth, H = Options.TileHeight;
  // The environment override only applies when the caller left the tile
  // unset, mirroring KF_THREADS: explicit configuration always wins.
  if (W <= 0 && H <= 0) {
    if (const char *Env = std::getenv("KF_TILE")) {
      if (!parseTileSpec(Env, W, H)) {
        static std::atomic<bool> Warned{false};
        if (!Warned.exchange(true))
          std::fprintf(stderr,
                       "warning: ignoring invalid KF_TILE='%s' (expected "
                       "'WxH' with extents in [1, 65536])\n",
                       Env);
      }
    }
  }
  if (Strategy == TilingStrategy::Overlapped) {
    // A block whose grown planes stay L2-resident for typical reaches;
    // the tuner refines this per plan.
    if (W <= 0)
      W = 128;
    if (H <= 0)
      H = 32;
  } else {
    if (W <= 0)
      W = ImageW;
    if (H <= 0)
      H = defaultTileHeight(ImageH, Threads);
  }
  TileW = std::max(1, std::min(W, std::max(ImageW, 1)));
  TileH = std::max(1, std::min(H, std::max(ImageH, 1)));
}

namespace {

/// Runs the interior/halo-decomposed tile loop over one output image.
/// Rows inside [Y0int, Y1int) split into a halo-left span, an interior
/// span evaluated by \p Row (row-wise fast path), and a halo-right span;
/// rows outside are entirely halo, evaluated per pixel by \p Pixel (the
/// bordered slow path). \p Halo is the fused access footprint.
template <class RowFn, class PixelFn>
void runTiledImage(ThreadPool &TP, const ExecutionOptions &Options,
                   Image &Out, int Halo, RowFn &&Row, PixelFn &&Pixel,
                   LaunchTiming *Timing = nullptr) {
  const int W = Out.width(), H = Out.height(), C = Out.channels();
  const int X0 = std::min(Halo, W), Y0 = std::min(Halo, H);
  const int X1 = std::max(X0, W - Halo), Y1 = std::max(Y0, H - Halo);
  float *OutBase = Out.data().data();

  int TileW, TileH;
  resolveTileSize(Options, TilingStrategy::InteriorHalo, W, H,
                  TP.numThreads(), TileW, TileH);

  // The halo span [XA, XB) of one row: per-pixel bordered evaluation.
  // The output pointer is loop-invariant state: hoisted to the span start
  // and walked pixel by pixel instead of re-deriving (Y*W + X)*C + Ch
  // per sample.
  auto haloSpan = [&](int Y, int XA, int XB, unsigned Worker) {
    float *Px = OutBase + (static_cast<size_t>(Y) * W + XA) * C;
    for (int X = XA; X < XB; ++X, Px += C)
      for (int Ch = 0; Ch != C; ++Ch)
        Px[Ch] = Pixel(X, Y, Ch, Worker);
  };
  // The interior span [IA, IB) of one row: row-wise fast path, one call
  // per channel from a hoisted row base.
  auto interiorSpan = [&](int Y, int IA, int IB, unsigned Worker) {
    float *RowPx = OutBase + (static_cast<size_t>(Y) * W + IA) * C;
    for (int Ch = 0; Ch != C; ++Ch)
      Row(Y, IA, IB, Ch, RowPx + Ch, C, Worker);
  };
  auto rowBounds = [&](int Y, const TileRange &T, int &IA, int &IB) {
    const bool RowHasInterior = Y >= Y0 && Y < Y1;
    IA = RowHasInterior ? std::clamp(X0, T.X0, T.X1) : T.X1;
    IB = RowHasInterior ? std::clamp(X1, T.X0, T.X1) : T.X1;
  };

  if (!Timing) {
    TP.parallelFor2D(W, H, TileW, TileH,
                     [&](const TileRange &T, unsigned Worker) {
                       for (int Y = T.Y0; Y != T.Y1; ++Y) {
                         int IA, IB;
                         rowBounds(Y, T, IA, IB);
                         haloSpan(Y, T.X0, IA, Worker);
                         if (IA < IB)
                           interiorSpan(Y, IA, IB, Worker);
                         haloSpan(Y, IB, T.X1, Worker);
                       }
                     },
                     Options.Source);
    return;
  }

  // Timing path: clock reads bracket the halo and interior spans of each
  // row, accumulated per worker (disjoint slots, summed after the join).
  using Clock = std::chrono::steady_clock;
  auto Us = [](Clock::time_point A, Clock::time_point B) {
    return std::chrono::duration<double, std::micro>(B - A).count();
  };
  std::vector<double> InteriorUs(TP.numThreads(), 0.0);
  std::vector<double> HaloUs(TP.numThreads(), 0.0);
  Clock::time_point Start = Clock::now();
  TP.parallelFor2D(W, H, TileW, TileH, [&](const TileRange &T,
                                           unsigned Worker) {
    double TileInterior = 0.0, TileHalo = 0.0;
    for (int Y = T.Y0; Y != T.Y1; ++Y) {
      int IA, IB;
      rowBounds(Y, T, IA, IB);
      Clock::time_point T0 = Clock::now();
      haloSpan(Y, T.X0, IA, Worker);
      Clock::time_point T1 = Clock::now();
      if (IA < IB)
        interiorSpan(Y, IA, IB, Worker);
      Clock::time_point T2 = Clock::now();
      haloSpan(Y, IB, T.X1, Worker);
      Clock::time_point T3 = Clock::now();
      TileHalo += Us(T0, T1) + Us(T2, T3);
      TileInterior += Us(T1, T2);
    }
    InteriorUs[Worker] += TileInterior;
    HaloUs[Worker] += TileHalo;
  }, Options.Source);
  Timing->TotalMs += Us(Start, Clock::now()) / 1e3;
  for (unsigned I = 0; I != TP.numThreads(); ++I) {
    Timing->InteriorMs += InteriorUs[I] / 1e3;
    Timing->HaloMs += HaloUs[I] / 1e3;
  }
}

/// Lane-scratch floats one worker needs for interior execution of a
/// program with \p NumRegs registers. Span and Jit both run out of the
/// SoA lane buffer (the JIT chains address it by absolute float offset);
/// scalar mode dispatches per pixel out of the pixel scratch and needs
/// none.
size_t laneScratchFloats(VmMode Mode, unsigned NumRegs) {
  return Mode != VmMode::Scalar
             ? static_cast<size_t>(NumRegs) * VmLaneWidth
             : 0;
}

/// Runs one fused launch under the overlapped tiling strategy. The tile
/// loop covers the whole image; within each tile the border ring (rows
/// and columns outside the interior rectangle) takes the per-pixel
/// bordered \p Pixel path exactly as the interior/halo strategy would,
/// while the tile's interior sub-rectangle goes through
/// runOverlappedTile: demanded producer stages materialize into the
/// worker's margin-grown scratch planes and the root reads the planes
/// instead of recursing. Tiles never exchange data -- the margins are
/// recomputed redundantly by every adjacent tile.
template <class PixelFn>
void runOverlappedImage(ThreadPool &TP, const ExecutionOptions &Options,
                        Image &Out, int Halo, const StagedVmProgram &SP,
                        uint16_t Root, const OverlapSchedule &Schedule,
                        const std::vector<Image> &Pool, VmMode Mode,
                        VmScratch &Scratch, PixelFn &&Pixel,
                        LaunchTiming *Timing) {
  const int W = Out.width(), H = Out.height(), C = Out.channels();
  const int X0 = std::min(Halo, W), Y0 = std::min(Halo, H);
  const int X1 = std::max(X0, W - Halo), Y1 = std::max(Y0, H - Halo);
  float *OutBase = Out.data().data();

  int TileW, TileH;
  resolveTileSize(Options, TilingStrategy::Overlapped, W, H,
                  TP.numThreads(), TileW, TileH);
  Scratch.ensure(TP.numThreads(), SP.NumRegs,
                 laneScratchFloats(Mode, SP.NumRegs),
                 overlapPlaneFloats(Schedule, TileW, TileH));

  auto haloSpan = [&](int Y, int XA, int XB, unsigned Worker) {
    float *Px = OutBase + (static_cast<size_t>(Y) * W + XA) * C;
    for (int X = XA; X < XB; ++X, Px += C)
      for (int Ch = 0; Ch != C; ++Ch)
        Px[Ch] = Pixel(X, Y, Ch, Worker);
  };
  // The tile's border-ring part: rows above/below the interior band plus
  // the left/right column strips inside it.
  auto haloPart = [&](const TileRange &T, int IA, int IB, int JA, int JB,
                      unsigned Worker) {
    for (int Y = T.Y0; Y < JA; ++Y)
      haloSpan(Y, T.X0, T.X1, Worker);
    for (int Y = JA; Y < JB; ++Y) {
      haloSpan(Y, T.X0, IA, Worker);
      haloSpan(Y, IB, T.X1, Worker);
    }
    for (int Y = JB; Y < T.Y1; ++Y)
      haloSpan(Y, T.X0, T.X1, Worker);
  };
  auto interiorPart = [&](int IA, int IB, int JA, int JB, unsigned Worker,
                          OverlapTileStats *Stats) {
    float *Regs = Mode == VmMode::Span
                      ? Scratch.LaneRegs[Worker].data()
                      : Scratch.PixelRegs[Worker].data();
    runOverlappedTile(SP, Root, Schedule, Pool, IA, IB, JA, JB, C, Mode,
                      Scratch.PlaneRegs[Worker].data(), Regs, OutBase, W,
                      Stats);
  };

  if (!Timing) {
    TP.parallelFor2D(W, H, TileW, TileH,
                     [&](const TileRange &T, unsigned Worker) {
                       const int IA = std::clamp(X0, T.X0, T.X1);
                       const int IB = std::clamp(X1, T.X0, T.X1);
                       const int JA = std::clamp(Y0, T.Y0, T.Y1);
                       const int JB = std::clamp(Y1, T.Y0, T.Y1);
                       haloPart(T, IA, IB, JA, JB, Worker);
                       if (IA < IB && JA < JB)
                         interiorPart(IA, IB, JA, JB, Worker, nullptr);
                     },
                     Options.Source);
    return;
  }

  // Timing path: clock reads bracket the halo ring and the overlapped
  // interior of each tile, accumulated per worker (disjoint slots).
  using Clock = std::chrono::steady_clock;
  auto Us = [](Clock::time_point A, Clock::time_point B) {
    return std::chrono::duration<double, std::micro>(B - A).count();
  };
  std::vector<double> InteriorUs(TP.numThreads(), 0.0);
  std::vector<double> HaloUs(TP.numThreads(), 0.0);
  std::vector<OverlapTileStats> WorkerStats(TP.numThreads());
  Clock::time_point Start = Clock::now();
  TP.parallelFor2D(W, H, TileW, TileH, [&](const TileRange &T,
                                           unsigned Worker) {
    const int IA = std::clamp(X0, T.X0, T.X1);
    const int IB = std::clamp(X1, T.X0, T.X1);
    const int JA = std::clamp(Y0, T.Y0, T.Y1);
    const int JB = std::clamp(Y1, T.Y0, T.Y1);
    Clock::time_point T0 = Clock::now();
    haloPart(T, IA, IB, JA, JB, Worker);
    Clock::time_point T1 = Clock::now();
    if (IA < IB && JA < JB)
      interiorPart(IA, IB, JA, JB, Worker, &WorkerStats[Worker]);
    Clock::time_point T2 = Clock::now();
    HaloUs[Worker] += Us(T0, T1);
    InteriorUs[Worker] += Us(T1, T2);
  }, Options.Source);
  Timing->TotalMs += Us(Start, Clock::now()) / 1e3;
  for (unsigned I = 0; I != TP.numThreads(); ++I) {
    Timing->InteriorMs += InteriorUs[I] / 1e3;
    Timing->HaloMs += HaloUs[I] / 1e3;
    Timing->OverlapPixels += WorkerStats[I].OverlapPixels;
    Timing->ComputedPixels += WorkerStats[I].ComputedPixels;
  }
}

void checkExternalInputs(const Program &P, const std::vector<Image> &Pool) {
  for (ImageId Id : P.externalInputs()) {
    const Image &Img = Pool[Id];
    const ImageInfo &Info = P.image(Id);
    if (Img.empty() || Img.width() != Info.Width ||
        Img.height() != Info.Height || Img.channels() != Info.Channels)
      reportFatalError("external input '" + Info.Name +
                       "' missing or mis-shaped in the image pool");
  }
}

} // namespace

std::vector<Image> kf::makeImagePool(const Program &P) {
  return std::vector<Image>(P.numImages());
}

void kf::runUnfused(const Program &P, std::vector<Image> &Pool,
                    const ExecutionOptions &Options) {
  assert(Pool.size() == P.numImages() && "pool size mismatch");
  checkExternalInputs(P, Pool);

  std::optional<std::vector<Digraph::NodeId>> Order =
      P.buildKernelDag().topologicalOrder();
  assert(Order && "kernel DAG has a cycle");
  ThreadPool TP(resolveThreadCount(Options.Threads));
  for (KernelId Id : *Order) {
    const Kernel &K = P.kernel(Id);
    const ImageInfo &Info = P.image(K.Output);
    std::string Label = "launch " + K.Name;
    TraceSpan Span(Label.c_str(), "sim");
    Image Out(Info.Width, Info.Height, Info.Channels);
    PoolSource Source(K, Pool);
    ExprEvaluator Eval(P, Source);
    // The AST engine has no interior specialization (border handling is
    // resolved per read): every pixel takes the Pixel path.
    runTiledImage(
        TP, Options, Out, std::max(Info.Width, Info.Height),
        [](int, int, int, int, float *, int, unsigned) {},
        [&](int X, int Y, int Ch, unsigned) {
          return Eval.eval(K.Body, X, Y, Ch, nullptr);
        });
    Pool[K.Output] = std::move(Out);
  }
}

void kf::runUnfusedVm(const Program &P, std::vector<Image> &Pool,
                      const ExecutionOptions &Options) {
  assert(Pool.size() == P.numImages() && "pool size mismatch");
  checkExternalInputs(P, Pool);

  std::optional<std::vector<Digraph::NodeId>> Order =
      P.buildKernelDag().topologicalOrder();
  assert(Order && "kernel DAG has a cycle");
  ThreadPool TP(resolveThreadCount(Options.Threads));
  VmMode Mode = resolveVmMode(Options.Mode);
  // The JIT backend covers fused launches (staged programs) only; plain
  // per-kernel launches take the bit-identical span interpreter.
  if (Mode == VmMode::Jit)
    Mode = VmMode::Span;

  std::vector<std::vector<float>> Regs(TP.numThreads());
  std::vector<std::vector<float>> LaneRegs(TP.numThreads());
  for (KernelId Id : *Order) {
    const Kernel &K = P.kernel(Id);
    const ImageInfo &Info = P.image(K.Output);
    std::string Label = "launch " + K.Name;
    TraceSpan Span(Label.c_str(), "sim");
    VmProgram VM = compileKernelBody(P, Id);
    Image Out(Info.Width, Info.Height, Info.Channels);

    // Interior/halo decomposition; inputs of a different extent make the
    // whole image halo (bordered reads everywhere).
    int Halo = vmHalo(VM);
    for (ImageId In : K.Inputs) {
      const ImageInfo &InInfo = P.image(In);
      if (InInfo.Width != Info.Width || InInfo.Height != Info.Height)
        Halo = std::max(Info.Width, Info.Height);
    }

    size_t LaneScratch = laneScratchFloats(Mode, VM.NumRegs);
    for (unsigned I = 0; I != TP.numThreads(); ++I) {
      Regs[I].resize(std::max<size_t>(Regs[I].size(), VM.NumRegs));
      LaneRegs[I].resize(std::max(LaneRegs[I].size(), LaneScratch));
    }

    runTiledImage(
        TP, Options, Out, Halo,
        [&](int Y, int XA, int XB, int Ch, float *OutPtr, int Stride,
            unsigned Worker) {
          if (Mode == VmMode::Span) {
            runVmSpan(VM, P, Id, Pool, Y, XA, XB, Ch,
                      LaneRegs[Worker].data(), OutPtr, Stride);
            return;
          }
          // Scalar interior: per-pixel dispatch, output pointer walked
          // across the span instead of re-derived per pixel.
          float *Px = OutPtr;
          for (int X = XA; X < XB; ++X, Px += Stride)
            *Px = runVmInterior(VM, P, Id, Pool, X, Y, Ch,
                                Regs[Worker].data());
        },
        [&](int X, int Y, int Ch, unsigned Worker) {
          return runVm(VM, P, Id, Pool, X, Y, Ch, Regs[Worker].data());
        });
    Pool[K.Output] = std::move(Out);
  }
}

void kf::runFused(const FusedProgram &FP, std::vector<Image> &Pool,
                  const ExecutionOptions &Options) {
  const Program &P = *FP.Source;
  assert(Pool.size() == P.numImages() && "pool size mismatch");
  checkExternalInputs(P, Pool);
  ThreadPool TP(resolveThreadCount(Options.Threads));

  for (const FusedKernel &FK : FP.Kernels) {
    FusedEvaluator Evaluator(FP, FK, Pool, Options);
    // One global output per destination (a single one under the paper's
    // rules; several under the multi-destination extension).
    for (KernelId DestId : FK.Destinations) {
      const Kernel &Dest = P.kernel(DestId);
      const ImageInfo &Info = P.image(Dest.Output);
      Image Out(Info.Width, Info.Height, Info.Channels);
      runTiledImage(
          TP, Options, Out, std::max(Info.Width, Info.Height),
          [](int, int, int, int, float *, int, unsigned) {},
          [&](int X, int Y, int Ch, unsigned) {
            return Evaluator.evalStage(DestId, X, Y, Ch);
          });
      Pool[Dest.Output] = std::move(Out);
    }
  }
}

StagedVmProgram kf::compileFusedKernel(const FusedProgram &FP,
                                       const FusedKernel &FK) {
  const Program &P = *FP.Source;
  std::vector<KernelId> StageKernels;
  std::vector<bool> IsEliminated;
  StageKernels.reserve(FK.Stages.size());
  for (const FusedStage &Stage : FK.Stages) {
    StageKernels.push_back(Stage.Kernel);
    IsEliminated.push_back(!FK.isDestination(Stage.Kernel));
  }
  return compileStagedProgram(P, StageKernels, IsEliminated);
}

void VmScratch::ensure(unsigned Threads, size_t PixelFloats,
                       size_t LaneFloats, size_t PlaneFloats) {
  if (PixelRegs.size() < Threads)
    PixelRegs.resize(Threads);
  if (LaneRegs.size() < Threads)
    LaneRegs.resize(Threads);
  if (PlaneRegs.size() < Threads)
    PlaneRegs.resize(Threads);
  for (unsigned I = 0; I != Threads; ++I) {
    PixelRegs[I].resize(std::max(PixelRegs[I].size(), PixelFloats));
    LaneRegs[I].resize(std::max(LaneRegs[I].size(), LaneFloats));
    PlaneRegs[I].resize(std::max(PlaneRegs[I].size(), PlaneFloats));
  }
}

int kf::fusedLaunchHalo(const StagedVmProgram &SP, uint16_t Root,
                        const ImageInfo &Info) {
  // The fused footprint: interior pixels can reach no border through
  // any chain of stage calls. Mixed extents void the interior.
  return SP.UniformExtents ? SP.Reach[Root]
                           : std::max(Info.Width, Info.Height);
}

void kf::runCompiledLaunch(const StagedVmProgram &SP, uint16_t Root,
                           int Halo, const std::vector<Image> &Pool,
                           Image &Out, const ExecutionOptions &Options,
                           ThreadPool &TP, VmScratch &Scratch,
                           LaunchTiming *Timing, const JitProgram *Jit) {
  VmMode Mode = resolveVmMode(Options.Mode, /*JitAvailable=*/Jit != nullptr);
  // Tuned is a plan-level request (sim/Session resolves it through the
  // execution autotuner before launches run); a standalone launch falls
  // back to the interior/halo default.
  TilingStrategy Strategy = resolveTilingStrategy(Options.Tiling);
  if (Strategy == TilingStrategy::Tuned)
    Strategy = TilingStrategy::InteriorHalo;
  OverlapSchedule Schedule;
  if (Strategy == TilingStrategy::Overlapped) {
    Schedule = buildOverlapSchedule(SP, Root, Out.channels());
    // Mixed extents void the interior region, leaving overlapped tiling
    // nothing to run on; fall back rather than schedule empty tiles.
    if (!Schedule.Valid)
      Strategy = TilingStrategy::InteriorHalo;
  }

  // A Jit request without a plan-time artifact (e.g. KF_VM=jit through
  // runFusedVm, which compiles bytecode per call): compile one on the
  // fly from the pool's materialized shapes. The compile is gated on the
  // bytecode validator; refusal falls back to the bit-identical span
  // interpreter rather than failing the launch.
  std::shared_ptr<const JitProgram> OwnedJit;
  if (Mode == VmMode::Jit && !Jit) {
    std::vector<ImageInfo> Shapes(Pool.size());
    for (size_t I = 0; I != Pool.size(); ++I) {
      Shapes[I].Width = Pool[I].width();
      Shapes[I].Height = Pool[I].height();
      Shapes[I].Channels = Pool[I].empty() ? 1 : Pool[I].channels();
    }
    OwnedJit = compileJitProgram(SP, Root, Shapes);
    Jit = OwnedJit.get();
  }
  if (Mode == VmMode::Jit && !Jit)
    Mode = VmMode::Span;
  // The JIT chains load directly from pool images; the overlapped
  // strategy's interior tiles read margin-grown scratch planes instead,
  // so its tiles keep the span engine (bit-identical by construction).
  if (Mode == VmMode::Jit && Strategy == TilingStrategy::Overlapped)
    Mode = VmMode::Span;

  const double InteriorBefore = Timing ? Timing->InteriorMs : 0.0;
  const double HaloBefore = Timing ? Timing->HaloMs : 0.0;
  const long long OverlapBefore = Timing ? Timing->OverlapPixels : 0;
  const long long ComputedBefore = Timing ? Timing->ComputedPixels : 0;

  auto HaloPixel = [&](int X, int Y, int Ch, unsigned Worker) {
    return runStagedVm(SP, Root, Pool, X, Y, Ch,
                       Scratch.PixelRegs[Worker].data(),
                       Options.UseIndexExchange);
  };

  if (Strategy == TilingStrategy::Overlapped) {
    runOverlappedImage(TP, Options, Out, Halo, SP, Root, Schedule, Pool,
                       Mode, Scratch, HaloPixel, Timing);
  } else {
    Scratch.ensure(TP.numThreads(), SP.NumRegs,
                   laneScratchFloats(Mode, SP.NumRegs));
    runTiledImage(
        TP, Options, Out, Halo,
        [&](int Y, int XA, int XB, int Ch, float *OutPtr, int Stride,
            unsigned Worker) {
          if (Mode == VmMode::Jit) {
            runJitSpan(*Jit, Pool, Y, XA, XB, Ch,
                       Scratch.LaneRegs[Worker].data(), OutPtr, Stride);
            return;
          }
          if (Mode == VmMode::Span) {
            runStagedVmSpan(SP, Root, Pool, Y, XA, XB, Ch,
                            Scratch.LaneRegs[Worker].data(), OutPtr,
                            Stride);
            return;
          }
          // Scalar interior: per-pixel dispatch, output pointer walked
          // across the span instead of re-derived per pixel.
          float *Regs = Scratch.PixelRegs[Worker].data();
          float *Px = OutPtr;
          for (int X = XA; X < XB; ++X, Px += Stride)
            *Px = runStagedVmInterior(SP, Root, Pool, X, Y, Ch, Regs);
        },
        HaloPixel, Timing);
  }

  if (Timing) {
    // The per-mode interior split as process counters: deltas of this
    // launch only, so an accumulated Timing never double-counts.
    Timing->Mode = Mode;
    Timing->Tiling = Strategy;
    TraceRecorder &TR = TraceRecorder::global();
    const double InteriorDelta = Timing->InteriorMs - InteriorBefore;
    TR.addCounter(Mode == VmMode::Jit    ? "vm.interior_jit_ms"
                  : Mode == VmMode::Span ? "vm.interior_span_ms"
                                         : "vm.interior_scalar_ms",
                  InteriorDelta);
    TR.addCounter("vm.halo_ms", Timing->HaloMs - HaloBefore);
    if (Strategy == TilingStrategy::Overlapped) {
      const long long OverlapDelta = Timing->OverlapPixels - OverlapBefore;
      const long long ComputedDelta =
          Timing->ComputedPixels - ComputedBefore;
      TR.addCounter("tile.overlap_pixels",
                    static_cast<double>(OverlapDelta));
      // Interior time attributable to redundant margin recompute: the
      // overlapped fraction of all cells this launch evaluated.
      if (ComputedDelta > 0)
        TR.addCounter("tile.redundant_halo_ms",
                      InteriorDelta * static_cast<double>(OverlapDelta) /
                          static_cast<double>(ComputedDelta));
    }
  }
}

void kf::runFusedVm(const FusedProgram &FP, std::vector<Image> &Pool,
                    const ExecutionOptions &Options) {
  const Program &P = *FP.Source;
  assert(Pool.size() == P.numImages() && "pool size mismatch");
  checkExternalInputs(P, Pool);
  ThreadPool TP(resolveThreadCount(Options.Threads));

  // Launch-level observability: the interior/halo timing split is only
  // collected (clock reads per row) when some consumer is listening.
  const bool Observe = TraceRecorder::enabled() || MetricsRegistry::enabled();
  if (MetricsRegistry::enabled())
    MetricsRegistry::global().recordPrediction(P.name(), FP);

  // A Tuned tiling request resolves here, before any launch runs: the
  // execution autotuner scores strategy x tile-shape candidates on the
  // cost model and the whole frame runs the winner. An explicit user
  // tile shape is respected; only unset extents take the tuned shape.
  ExecutionOptions Effective = Options;
  Effective.Tiling = resolveTilingStrategy(Options.Tiling);
  if (Effective.Tiling == TilingStrategy::Tuned) {
    const ExecTuneResult Tuned = tuneExecution(
        FP, MetricsRegistry::referenceDevice(), CostModelParams());
    Effective.Tiling = Tuned.Best.Candidate.Strategy;
    if (Options.TileWidth <= 0 && Options.TileHeight <= 0) {
      Effective.TileWidth = Tuned.Best.Candidate.Tile.Width;
      Effective.TileHeight = Tuned.Best.Candidate.Tile.Height;
    }
  }

  VmScratch Scratch;
  for (const FusedKernel &FK : FP.Kernels) {
    StagedVmProgram SP = compileFusedKernel(FP, FK);
    for (KernelId DestId : FK.Destinations) {
      uint16_t Root = 0;
      for (size_t I = 0; I != FK.Stages.size(); ++I)
        if (FK.Stages[I].Kernel == DestId)
          Root = static_cast<uint16_t>(I);
      const Kernel &Dest = P.kernel(DestId);
      const ImageInfo &Info = P.image(Dest.Output);
      Image Out(Info.Width, Info.Height, Info.Channels);
      if (!Observe) {
        runCompiledLaunch(SP, Root, fusedLaunchHalo(SP, Root, Info), Pool,
                          Out, Effective, TP, Scratch);
      } else {
        std::string Label = "launch " + FK.Name;
        LaunchTiming Timing;
        TraceSpan Span(Label.c_str(), "sim");
        runCompiledLaunch(SP, Root, fusedLaunchHalo(SP, Root, Info), Pool,
                          Out, Effective, TP, Scratch, &Timing);
        Span.arg("interior_ms", Timing.InteriorMs);
        Span.arg("halo_ms", Timing.HaloMs);
        Span.arg("vm_span", Timing.Mode == VmMode::Span ? 1.0 : 0.0);
        Span.arg("tiling_overlapped",
                 Timing.Tiling == TilingStrategy::Overlapped ? 1.0 : 0.0);
        Span.arg("overlap_pixels",
                 static_cast<double>(Timing.OverlapPixels));
        Span.arg("stages", static_cast<double>(FK.Stages.size()));
        MetricsRegistry::global().recordLaunch(
            P.name(), FK.Name, Timing.TotalMs, Timing.InteriorMs,
            Timing.HaloMs, Timing.Mode, Timing.Tiling);
      }
      Pool[Dest.Output] = std::move(Out);
    }
  }
}

float kf::evalKernelAt(const Program &P, KernelId Id,
                       const std::vector<Image> &Pool, int X, int Y,
                       int Channel) {
  const Kernel &K = P.kernel(Id);
  PoolSource Source(K, Pool);
  ExprEvaluator Eval(P, Source);
  return Eval.eval(K.Body, X, Y, Channel, nullptr);
}
