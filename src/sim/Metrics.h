//===- sim/Metrics.h - Predicted-vs-measured model validation ---*- C++ -*-===//
///
/// \file
/// Continuous validation of the analytic benefit model against execution.
/// The fusion decisions rest entirely on the cost model (Eqs. 3-12)
/// predicting the cycles a fused launch takes; an analytic GPU model is
/// only trustworthy while its predictions are checked against measured
/// behaviour (Jangda & Guha, "Model-Based Warp Overlapped Tiling"). The
/// MetricsRegistry pairs, per fused launch, the model's *predicted*
/// cycles/milliseconds on a reference device with the host simulator's
/// *measured* wall time (plus the interior/halo split the executor
/// collects), and renders the comparison as a table with a geomean
/// predicted/measured ratio -- the reproduction's running analogue of the
/// paper's Table I.
///
/// Predicted and measured times live on different machines (an analytic
/// GPU vs the host CPU simulator), so the point of the ratio is not 1.0
/// but *stability*: a launch whose ratio is far off the geomean is one
/// where the model mis-ranks work, which is exactly what would mislead
/// the partitioner.
///
/// Like TraceRecorder, the registry is process-wide, thread-safe, off by
/// default, and one relaxed atomic load when disabled.
///
//===----------------------------------------------------------------------===//

#ifndef KF_SIM_METRICS_H
#define KF_SIM_METRICS_H

#include "ir/ExprVM.h"
#include "sim/DeviceSpec.h"

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace kf {

struct FusedProgram;

/// One fused launch's model-vs-execution record. Prediction and
/// measurement arrive from different call sites (plan compilation vs
/// execution) and are merged by (Program, Launch) key.
struct LaunchModelRecord {
  std::string Program;       ///< Pipeline / program name ("" if unnamed).
  std::string Launch;        ///< Fused kernel name, e.g. "fk0".
  unsigned Stages = 0;       ///< Stages fused into the launch.
  long long Pixels = 0;      ///< Output iteration-space size.
  double PredictedMs = 0.0;  ///< Model estimate on the reference device.
  double PredictedCycles = 0.0; ///< PredictedMs in reference-clock cycles.
  uint64_t Runs = 0;         ///< Measured executions merged in.
  double MeasuredMs = 0.0;   ///< Total measured host wall time.
  double InteriorMs = 0.0;   ///< Interior-pixel share of MeasuredMs.
  double HaloMs = 0.0;       ///< Halo-pixel share of MeasuredMs.

  /// Per-VM-mode interior accounting: runs executed (and interior time
  /// spent) under the span vs the scalar interior engine, so one record
  /// can report the scalar/span interior ratio when a launch was measured
  /// in both modes (the A/B benches do exactly that).
  uint64_t SpanRuns = 0;
  uint64_t ScalarRuns = 0;
  double SpanInteriorMs = 0.0;
  double ScalarInteriorMs = 0.0;

  /// Per-tiling-strategy accounting, same shape as the per-mode split:
  /// runs (and total measured time) under the overlapped vs the
  /// interior/halo strategy, so a launch A/B-measured under both can
  /// report which one its pixels actually favour.
  uint64_t OverlappedRuns = 0;
  uint64_t InteriorTilingRuns = 0;
  double OverlappedMs = 0.0;
  double InteriorTilingMs = 0.0;

  double measuredMeanMs() const { return Runs ? MeasuredMs / Runs : 0.0; }
  /// Predicted / measured-mean ratio; 0 when either side is missing.
  double ratio() const {
    double Mean = measuredMeanMs();
    return Mean > 0.0 && PredictedMs > 0.0 ? PredictedMs / Mean : 0.0;
  }
  /// Mean scalar-interior time over mean span-interior time -- the span
  /// engine's interior speedup; 0 unless both modes were measured.
  double spanOverScalar() const {
    if (!SpanRuns || !ScalarRuns || SpanInteriorMs <= 0.0)
      return 0.0;
    return (ScalarInteriorMs / ScalarRuns) / (SpanInteriorMs / SpanRuns);
  }
  /// Mean interior/halo-strategy time over mean overlapped-strategy time
  /// -- the overlapped strategy's speedup (> 1 means overlapped tiling
  /// won this launch); 0 unless both strategies were measured.
  double overlappedSpeedup() const {
    if (!OverlappedRuns || !InteriorTilingRuns || OverlappedMs <= 0.0)
      return 0.0;
    return (InteriorTilingMs / InteriorTilingRuns) /
           (OverlappedMs / OverlappedRuns);
  }
};

/// One execution-autotuner decision (sim/Tuner.h, tuneExecution): the
/// strategy x tile-shape winner the cost model picked for a program.
struct TunerDecisionRecord {
  std::string Program;       ///< Pipeline / program name ("" if unnamed).
  TilingStrategy Strategy = TilingStrategy::InteriorHalo;
  int TileWidth = 0;
  int TileHeight = 0;
  double PredictedMs = 0.0;  ///< Winning candidate's model estimate.
  unsigned Candidates = 0;   ///< Grid points scored.
};

/// Per-session serving statistics of one PipelineServer tenant: frame
/// counts and end-to-end latency (enqueue to consume), split into the
/// time a frame sat queued behind its session's earlier frames and the
/// time it executed. Merged by session name.
struct ServerSessionRecord {
  std::string Session;      ///< Tenant name (e.g. "s0:harris").
  uint64_t Frames = 0;      ///< Frames completed.
  uint64_t Rejected = 0;    ///< Submissions refused by backpressure.
  double QueueMs = 0.0;     ///< Total time frames waited queued.
  double ExecMs = 0.0;      ///< Total time frames spent executing.
  double MaxLatencyMs = 0.0; ///< Worst single frame, queue + exec.

  double meanLatencyMs() const {
    return Frames ? (QueueMs + ExecMs) / Frames : 0.0;
  }
};

/// The process-wide predicted-vs-measured registry.
class MetricsRegistry {
public:
  static MetricsRegistry &global();

  /// Cheap enabled test for instrumentation sites.
  static bool enabled() {
    return EnabledFlag.load(std::memory_order_relaxed);
  }

  void setEnabled(bool Enabled);

  /// The device the predictions are evaluated on (the paper's GTX 745).
  static DeviceSpec referenceDevice();

  /// Runs the cost model over every fused kernel of \p FP and records one
  /// prediction per launch under program \p Program. Re-recording the
  /// same key refreshes the prediction without touching measurements.
  /// No-op while disabled.
  void recordPrediction(const std::string &Program, const FusedProgram &FP);

  /// Merges one measured execution of launch \p Launch of \p Program.
  /// \p InteriorMs / \p HaloMs may be zero when the executor did not
  /// collect the split. \p Mode is the resolved interior engine the run
  /// used (LaunchTiming::Mode), feeding the per-mode interior split;
  /// \p Tiling the resolved strategy (LaunchTiming::Tiling), feeding the
  /// per-strategy split. No-op while disabled.
  void recordLaunch(const std::string &Program, const std::string &Launch,
                    double MeasuredMs, double InteriorMs = 0.0,
                    double HaloMs = 0.0, VmMode Mode = VmMode::Span,
                    TilingStrategy Tiling = TilingStrategy::InteriorHalo);

  /// Records one execution-autotuner decision. Re-recording the same
  /// program replaces its previous decision. No-op while disabled.
  void recordTunerDecision(const TunerDecisionRecord &Decision);

  /// Merges one served frame of tenant \p Session: \p QueueMs spent
  /// queued, \p ExecMs executing. No-op while disabled.
  void recordServerFrame(const std::string &Session, double QueueMs,
                         double ExecMs);

  /// Merges one backpressure rejection of tenant \p Session. No-op while
  /// disabled.
  void recordServerRejection(const std::string &Session);

  /// Snapshot of per-tenant serving records, in first-seen order.
  std::vector<ServerSessionRecord> serverSessions() const;

  /// Snapshot of recorded tuner decisions, in first-seen program order.
  std::vector<TunerDecisionRecord> tunerDecisions() const;

  /// Snapshot of all records, in first-seen order.
  std::vector<LaunchModelRecord> records() const;

  /// Geomean of per-launch predicted/measured ratios over records with
  /// both sides present; 0 when there are none.
  double geomeanRatio() const;

  /// The per-launch predicted-vs-measured table plus the geomean line.
  /// Empty string when nothing was recorded.
  std::string renderTable() const;

  /// The records as a JSON array (for the benchmark result files):
  /// [{"program":..., "launch":..., "predicted_ms":..., ...}, ...].
  std::string toJson(const std::string &Indent = "  ") const;

  /// Drops all records (the enabled flag is kept).
  void clear();

private:
  MetricsRegistry() = default;

  LaunchModelRecord &findOrCreate(const std::string &Program,
                                  const std::string &Launch);
  ServerSessionRecord &findOrCreateSession(const std::string &Session);

  static std::atomic<bool> EnabledFlag;

  mutable std::mutex Mutex;
  std::vector<LaunchModelRecord> Records;
  std::vector<TunerDecisionRecord> Decisions;
  std::vector<ServerSessionRecord> Sessions;
};

} // namespace kf

#endif // KF_SIM_METRICS_H
