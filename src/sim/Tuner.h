//===- sim/Tuner.h - Fusion parameter autotuning -----------------*- C++ -*-===//
///
/// \file
/// A small autotuner closing the loop between the fusion engine and the
/// simulator: it sweeps the user-facing knobs -- the shared-memory
/// threshold c_Mshared of Eq. 2 (the paper sets it to 2 by hand "in order
/// to obtain high resource utilization") and the thread-block tile shape
/// -- and picks the configuration with the lowest simulated execution
/// time for a given device. This mechanizes the tradeoff exploration the
/// paper motivates in Figure 1.
///
//===----------------------------------------------------------------------===//

#ifndef KF_SIM_TUNER_H
#define KF_SIM_TUNER_H

#include "fusion/HardwareModel.h"
#include "fusion/Partition.h"
#include "sim/CostModel.h"

namespace kf {

/// One point of the search space.
struct TuneCandidate {
  double SharedMemThreshold = 2.0;
  TileShape Tile;
};

/// One evaluated configuration.
struct TunePoint {
  TuneCandidate Candidate;
  double TimeMs = 0.0;
  unsigned Launches = 0;
};

/// Outcome of a tuning run.
struct TuneResult {
  TunePoint Best;
  Partition BestPartition;           ///< Fusion under the best candidate.
  std::vector<TunePoint> Explored;   ///< All evaluated points, in order.
};

/// The default search grid: thresholds {1, 1.5, 2, 3, 4, 8} crossed with
/// tiles {32x4, 32x8, 64x2, 16x8, 16x16}.
std::vector<TuneCandidate> defaultTuneGrid();

/// Evaluates every candidate: re-runs the min-cut fusion with the
/// candidate threshold, materializes with the candidate tile, and
/// estimates the program time on \p Device. Deterministic; ties keep the
/// earliest candidate.
TuneResult tuneFusion(const Program &P, const DeviceSpec &Device,
                      const HardwareModel &BaseHW,
                      const CostModelParams &BaseParams,
                      const std::vector<TuneCandidate> &Grid =
                          defaultTuneGrid());

//===--------------------------------------------------------------------===//
// Execution autotuning: tiling strategy x tile shape
//===--------------------------------------------------------------------===//

/// One point of the execution search space: how an already-fused program
/// should be tiled at run time. Non-positive tile extents mean "the
/// executor's per-strategy default" (see resolveTileSize in
/// sim/Executor.h).
struct ExecTuneCandidate {
  TilingStrategy Strategy = TilingStrategy::InteriorHalo;
  TileShape Tile{0, 0};
};

/// One evaluated execution configuration.
struct ExecTunePoint {
  ExecTuneCandidate Candidate;
  double TimeMs = 0.0;
};

/// Outcome of an execution-tuning run.
struct ExecTuneResult {
  ExecTunePoint Best;
  std::vector<ExecTunePoint> Explored; ///< All evaluated points, in order.
};

/// The default execution search grid: the interior/halo default
/// decomposition plus overlapped tiling at L2-sized block shapes around
/// the 128x32 default.
std::vector<ExecTuneCandidate> defaultExecTuneGrid();

/// Scores every candidate on the per-strategy cost model
/// (accountFusedProgram with the candidate's strategy and tile) and
/// picks the cheapest estimated program time on \p Device. The fusion is
/// taken as given -- this tunes how to *run* \p FP, not how to fuse it.
/// Interior/halo candidates additionally pay for the host VM's
/// per-stage-call producer recompute (the accountant's SharedTile
/// multiplicities model the GPU's on-chip caching, which the host
/// interior path does not have) so chains of local producers score
/// against their real recursive cost.
/// Deterministic; ties keep the earliest candidate. The decision (and
/// every scored candidate) is emitted as "tuner.execution" /
/// "tuner.candidate" trace spans when tracing is on, and recorded with
/// MetricsRegistry::recordTunerDecision when metrics are on.
ExecTuneResult tuneExecution(const FusedProgram &FP,
                             const DeviceSpec &Device,
                             const CostModelParams &BaseParams,
                             const std::vector<ExecTuneCandidate> &Grid =
                                 defaultExecTuneGrid());

} // namespace kf

#endif // KF_SIM_TUNER_H
