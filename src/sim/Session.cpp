//===- sim/Session.cpp ------------------------------------------------------===//

#include "sim/Session.h"

#include "analysis/Analyzer.h"
#include "analysis/BytecodeValidator.h"
#include "analysis/IntervalAnalysis.h"
#include "jit/JitProgram.h"
#include "sim/Metrics.h"
#include "sim/Tuner.h"
#include "support/Error.h"
#include "support/Trace.h"

#include <cassert>
#include <chrono>
#include <thread>

using namespace kf;

namespace {

/// splitmix64 finalizer: a full-avalanche 64-bit mixer.
uint64_t mix64(uint64_t X) {
  X += 0x9e3779b97f4a7c15ull;
  X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ull;
  X = (X ^ (X >> 27)) * 0x94d049bb133111ebull;
  return X ^ (X >> 31);
}

double sinceMs(std::chrono::steady_clock::time_point Start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - Start)
      .count();
}

} // namespace

uint64_t kf::hashNamedField(const char *Name, uint64_t Value) {
  uint64_t H = 1469598103934665603ull;
  for (const char *C = Name; *C; ++C) {
    H ^= static_cast<unsigned char>(*C);
    H *= 1099511628211ull;
  }
  return mix64(H ^ mix64(Value));
}

uint64_t kf::hashExecutionOptions(const ExecutionOptions &Options) {
  // XOR-combined named fields: commutative, so the hash survives field
  // reordering in ExecutionOptions (and in this function).
  // ExecutionOptions::Source is deliberately NOT hashed: it is a pure
  // scheduling tag (which pool source a launch charges) with no effect on
  // computed pixels, and hashing it would make every server tenant miss
  // the shared plan cache on plans that are byte-identical.
  return hashNamedField("UseIndexExchange", Options.UseIndexExchange ? 1 : 0) ^
         hashNamedField("Threads", static_cast<uint32_t>(Options.Threads)) ^
         hashNamedField("TileWidth",
                        static_cast<uint32_t>(Options.TileWidth)) ^
         hashNamedField("TileHeight",
                        static_cast<uint32_t>(Options.TileHeight)) ^
         hashNamedField("VmMode", static_cast<uint32_t>(Options.Mode)) ^
         hashNamedField("Tiling", static_cast<uint32_t>(Options.Tiling)) ^
         hashNamedField("Opt", static_cast<uint32_t>(Options.Opt));
}

uint64_t kf::planKey(const FusedProgram &FP, const ExecutionOptions &Options) {
  assert(FP.Source && "fused program without a source program");
  uint64_t H = FP.Source->structuralHash();
  H = mix64(H ^ static_cast<uint64_t>(FP.Style));
  for (const FusedKernel &FK : FP.Kernels) {
    H = mix64(H ^ 0xb10c);
    for (const FusedStage &Stage : FK.Stages)
      H = mix64(H ^ ((static_cast<uint64_t>(Stage.Kernel) << 8) |
                     static_cast<uint64_t>(Stage.OutputPlacement)));
    for (KernelId Dest : FK.Destinations)
      H = mix64(H ^ (0xde57 + Dest));
  }
  return H ^ hashExecutionOptions(Options);
}

std::shared_ptr<const CompiledPlan>
kf::compilePlan(const FusedProgram &FP, const ExecutionOptions &Options) {
  const Program &P = *FP.Source;
  TraceSpan Span("session.compile", "session");
  // Plan compilation is where a streaming run's launches take shape, so
  // it is also where their model predictions are recorded.
  if (MetricsRegistry::enabled())
    MetricsRegistry::global().recordPrediction(P.name(), FP);
  auto Plan = std::make_shared<CompiledPlan>();
  Plan->Key = planKey(FP, Options);
  Plan->ProgramName = P.name();
  Plan->Shapes.reserve(P.numImages());
  for (ImageId Id = 0; Id != P.numImages(); ++Id)
    Plan->Shapes.push_back(P.image(Id));
  Plan->ExternalInputs = P.externalInputs();

  // A Tuned tiling request resolves at compile time: the execution
  // autotuner scores strategy x tile-shape candidates once and the
  // decision rides along in the cached plan -- frames pay nothing.
  if (resolveTilingStrategy(Options.Tiling) == TilingStrategy::Tuned) {
    const ExecTuneResult Tuned = tuneExecution(
        FP, MetricsRegistry::referenceDevice(), CostModelParams());
    Plan->Tuning.Active = true;
    Plan->Tuning.Strategy = Tuned.Best.Candidate.Strategy;
    Plan->Tuning.TileWidth = Tuned.Best.Candidate.Tile.Width;
    Plan->Tuning.TileHeight = Tuned.Best.Candidate.Tile.Height;
    Plan->Tuning.PredictedMs = Tuned.Best.TimeMs;
    Span.arg("tuned_overlapped",
             Plan->Tuning.Strategy == TilingStrategy::Overlapped ? 1.0
                                                                 : 0.0);
  }

  // Every freshly compiled plan is statically validated before it can
  // reach the executor or the plan cache: bytecode structure, then the
  // footprint/halo proof for each launch. Compilation bugs surface here
  // as diagnostics instead of undefined behavior mid-run.
  DiagnosticEngine DE;
  for (const FusedKernel &FK : FP.Kernels) {
    StagedVmProgram SP = compileFusedKernel(FP, FK);
    for (KernelId DestId : FK.Destinations) {
      CompiledLaunch Launch;
      Launch.Name = FK.Name;
      for (size_t I = 0; I != FK.Stages.size(); ++I)
        if (FK.Stages[I].Kernel == DestId)
          Launch.Root = static_cast<uint16_t>(I);
      Launch.Output = P.kernel(DestId).Output;
      Launch.Halo =
          fusedLaunchHalo(SP, Launch.Root, P.image(Launch.Output));
      Launch.Code = SP;
      analyzeLaunch(P, FK, FK.Name, Launch.Code, Launch.Root, Launch.Halo,
                    Plan->Shapes, DE);
      Plan->Launches.push_back(std::move(Launch));
    }
  }
  if (DE.errorCount() > 0)
    reportFatalError("compiled plan for '" + P.name() +
                     "' failed static validation:\n" + DE.renderText());

  // With validation green, run the interval abstract interpreter over
  // every launch and -- unless KF_OPT / ExecutionOptions::Opt turns the
  // escape hatch -- the fact-gated bytecode optimizer. Launches are in
  // dependence order, so each launch's result interval seeds the load
  // ranges of every later launch that reads its output; external inputs
  // carry the declared [0, 1] contract. A rewritten stream must pass the
  // bytecode validator again before it may replace the original (the
  // optimizer preserves KF-B01..B11 by construction; this is the
  // defensive recheck), and its halo is re-derived -- rewrites only ever
  // shrink reach, which widens the interior.
  const bool RunOpt = resolveOptMode(Options.Opt) == OptMode::On;
  {
    std::vector<InputRange> PoolRanges(P.numImages());
    double RemovedInsts = 0;
    for (CompiledLaunch &Launch : Plan->Launches) {
      IntervalAnalysisResult Intervals =
          analyzeStagedIntervals(Launch.Code, Launch.Root, PoolRanges);
      Launch.Facts = Intervals.Stages;
      if (RunOpt) {
        StagedVmProgram Optimized = Launch.Code;
        uint16_t Root = Launch.Root;
        VmOptStats Stats;
        if (optimizeStagedProgram(Optimized, Root, Intervals.Stages,
                                  &Stats)) {
          DiagnosticEngine OptDE;
          validateStagedProgram(Optimized, Root, Plan->Shapes, OptDE);
          if (OptDE.errorCount() == 0) {
            Launch.Code = std::move(Optimized);
            Launch.Root = Root;
            Launch.Halo = fusedLaunchHalo(Launch.Code, Launch.Root,
                                          P.image(Launch.Output));
            Launch.OptStats = Stats;
            RemovedInsts += Stats.removedInsts();
          }
        }
      }
      InputRange Written;
      Written.Lo = Intervals.Result.Lo;
      Written.Hi = Intervals.Result.Hi;
      Written.MayNaN = Intervals.Result.MayNaN;
      PoolRanges[Launch.Output] = Written;
    }
    if (TraceRecorder::enabled())
      TraceRecorder::global().addCounter("opt.removed_insts",
                                         RemovedInsts);
    Span.arg("opt_removed_insts", RemovedInsts);
  }

  // With validation green, compile the per-launch JIT artifacts (the
  // validator's invariants are the contract the JIT codegen trusts --
  // compileJitProgram re-runs it and refuses independently). The artifact
  // is mode-independent derived data riding in the cached plan: Auto
  // prefers JIT when a launch carries one, so sessions get the native
  // interior path by default, with nullptr falling back to span.
  for (CompiledLaunch &Launch : Plan->Launches)
    Launch.Jit = compileJitProgram(Launch.Code, Launch.Root, Plan->Shapes);
  return Plan;
}

//===--------------------------------------------------------------------===//
// PlanCache
//===--------------------------------------------------------------------===//

PlanCache::PlanCache(size_t CapacityIn)
    : Capacity(CapacityIn == 0 ? 1 : CapacityIn) {}

std::shared_ptr<const CompiledPlan> PlanCache::lookup(uint64_t Key) {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = Index.find(Key);
  if (It == Index.end()) {
    ++Stats.Misses;
    return nullptr;
  }
  ++Stats.Hits;
  Lru.splice(Lru.begin(), Lru, It->second); // Promote to most recent.
  return *It->second;
}

void PlanCache::insertLocked(std::shared_ptr<const CompiledPlan> Plan) {
  auto It = Index.find(Plan->Key);
  if (It != Index.end()) {
    *It->second = std::move(Plan);
    Lru.splice(Lru.begin(), Lru, It->second);
    return;
  }
  Lru.push_front(std::move(Plan));
  Index[Lru.front()->Key] = Lru.begin();
  while (Lru.size() > Capacity) {
    // Eviction only drops the cache's shared_ptr reference: a session
    // still executing the evicted plan holds its own reference and the
    // plan stays alive until that borrower releases it.
    Index.erase(Lru.back()->Key);
    Lru.pop_back();
    ++Stats.Evictions;
  }
}

void PlanCache::insert(std::shared_ptr<const CompiledPlan> Plan) {
  assert(Plan && "inserting a null plan");
  std::lock_guard<std::mutex> Lock(Mutex);
  insertLocked(std::move(Plan));
}

std::shared_ptr<const CompiledPlan> PlanCache::getOrCompile(
    uint64_t Key,
    const std::function<std::shared_ptr<const CompiledPlan>()> &Compile,
    bool *WasHit) {
  std::unique_lock<std::mutex> Lock(Mutex);
  while (true) {
    auto It = Index.find(Key);
    if (It != Index.end()) {
      ++Stats.Hits;
      Lru.splice(Lru.begin(), Lru, It->second);
      if (WasHit)
        *WasHit = true;
      return *It->second;
    }
    auto PendingIt = Pending.find(Key);
    if (PendingIt == Pending.end())
      break; // This caller leads the compile.
    // Another caller is compiling this key right now: wait and share its
    // result instead of compiling the same plan twice (single-flight).
    std::shared_ptr<InFlight> Slot = PendingIt->second;
    InFlightCv.wait(Lock, [&] { return Slot->Done; });
    ++Stats.Hits; // Served a shared plan without compiling: a hit.
    if (WasHit)
      *WasHit = true;
    return Slot->Plan;
  }

  ++Stats.Misses;
  auto Slot = std::make_shared<InFlight>();
  Pending.emplace(Key, Slot);
  Lock.unlock();
  std::shared_ptr<const CompiledPlan> Plan = Compile();
  Lock.lock();
  Slot->Plan = Plan;
  Slot->Done = true;
  Pending.erase(Key);
  if (Plan)
    insertLocked(Plan);
  Lock.unlock();
  InFlightCv.notify_all();
  if (WasHit)
    *WasHit = false;
  return Plan;
}

PlanCacheStats PlanCache::stats() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  PlanCacheStats Out = Stats;
  Out.Entries = Lru.size();
  return Out;
}

void PlanCache::clear() {
  std::lock_guard<std::mutex> Lock(Mutex);
  // In-flight compiles (Pending) are left alone: their leaders insert on
  // completion as if freshly compiled.
  Lru.clear();
  Index.clear();
  Stats = PlanCacheStats();
}

PlanCache &kf::globalPlanCache() {
  static PlanCache Cache(16);
  return Cache;
}

//===--------------------------------------------------------------------===//
// FramePool
//===--------------------------------------------------------------------===//

std::vector<Image>
FramePool::acquire(const std::vector<ImageInfo> &Shapes,
                   const std::vector<ImageId> &Outputs) {
  std::vector<Image> Frame;
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    if (!Free.empty() && Free.back().size() == Shapes.size()) {
      Frame = std::move(Free.back());
      Free.pop_back();
      ++Reused;
    } else {
      Frame.resize(Shapes.size());
      ++Allocated;
    }
  }
  // Reshaping happens outside the lock: the frame is exclusively owned
  // here, and image allocation is the expensive part.
  // (Re)shape the launch outputs; recycled frames of the same session
  // already match and keep their buffers.
  for (ImageId Id : Outputs) {
    const ImageInfo &Info = Shapes[Id];
    const Image &Existing = Frame[Id];
    if (Existing.width() != Info.Width || Existing.height() != Info.Height ||
        Existing.channels() != Info.Channels)
      Frame[Id] = Image(Info.Width, Info.Height, Info.Channels);
  }
  return Frame;
}

void FramePool::release(std::vector<Image> &&Frame) {
  std::lock_guard<std::mutex> Lock(Mutex);
  Free.push_back(std::move(Frame));
}

uint64_t FramePool::framesReused() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Reused;
}

uint64_t FramePool::framesAllocated() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Allocated;
}

//===--------------------------------------------------------------------===//
// PipelineSession
//===--------------------------------------------------------------------===//

PipelineSession::PipelineSession(const FusedProgram &FPIn,
                                 ExecutionOptions OptionsIn,
                                 PlanCache *CacheIn,
                                 ThreadPool *SharedPoolIn)
    : FP(&FPIn), Options(OptionsIn),
      Cache(CacheIn ? CacheIn : &globalPlanCache()),
      SharedPool(SharedPoolIn) {
  const Program &P = *FP->Source;
  Shapes.reserve(P.numImages());
  for (ImageId Id = 0; Id != P.numImages(); ++Id)
    Shapes.push_back(P.image(Id));
  for (const FusedKernel &FK : FP->Kernels)
    for (KernelId Dest : FK.Destinations)
      Outputs.push_back(P.kernel(Dest).Output);
}

void PipelineSession::setOptions(const ExecutionOptions &NewOptions) {
  Options = NewOptions;
  Plan.reset(); // Next frame re-keys; the thread pool rebuilds lazily.
}

void PipelineSession::ensureThreadPool() {
  if (SharedPool)
    return; // Borrowed pool: the server owns sizing and lifetime.
  unsigned Want = resolveThreadCount(Options.Threads);
  if (!Pool || PoolThreads != Want) {
    Pool = std::make_unique<ThreadPool>(Want);
    PoolThreads = Want;
  }
}

std::shared_ptr<const CompiledPlan> PipelineSession::plan() {
  uint64_t Key = planKey(*FP, Options);
  // Single-flight through the (possibly shared) cache: when N tenants
  // first touch the same plan concurrently, one compiles and the rest
  // share the result.
  bool WasHit = false;
  std::shared_ptr<const CompiledPlan> Cached = Cache->getOrCompile(
      Key,
      [&] {
        auto Start = std::chrono::steady_clock::now();
        auto Compiled = compilePlan(*FP, Options);
        Stats.CompileMs += sinceMs(Start);
        return Compiled;
      },
      &WasHit);
  if (WasHit)
    ++Stats.PlanHits;
  else
    ++Stats.PlanMisses;
  Plan = Cached;
  return Cached;
}

std::vector<Image> PipelineSession::acquireFrame() {
  std::vector<Image> Frame = Frames.acquire(Shapes, Outputs);
  Stats.FramesReused = Frames.framesReused();
  Stats.FramesAllocated = Frames.framesAllocated();
  return Frame;
}

void PipelineSession::releaseFrame(std::vector<Image> &&Frame) {
  Frames.release(std::move(Frame));
}

void PipelineSession::runFrame(std::vector<Image> &Frame) {
  std::shared_ptr<const CompiledPlan> Current = plan();
  ensureThreadPool();
  ThreadPool &TP = SharedPool ? *SharedPool : *Pool;

  if (Frame.size() != Current->Shapes.size())
    reportFatalError("session frame pool size mismatch for '" +
                     Current->ProgramName + "'");
  for (ImageId Id : Current->ExternalInputs) {
    const Image &In = Frame[Id];
    const ImageInfo &Info = Current->Shapes[Id];
    if (In.empty() || In.width() != Info.Width ||
        In.height() != Info.Height || In.channels() != Info.Channels)
      reportFatalError("external input '" + Info.Name +
                       "' missing or mis-shaped in the session frame");
  }

  // A plan compiled under Tuned carries its decision: frames run the
  // tuned strategy, and the tuned tile shape unless the user pinned one.
  ExecutionOptions Effective = Options;
  if (Current->Tuning.Active) {
    Effective.Tiling = Current->Tuning.Strategy;
    if (Options.TileWidth <= 0 && Options.TileHeight <= 0) {
      Effective.TileWidth = Current->Tuning.TileWidth;
      Effective.TileHeight = Current->Tuning.TileHeight;
    }
  }

  const bool Observe = TraceRecorder::enabled() || MetricsRegistry::enabled();
  TraceSpan FrameSpan("session.frame", "session");
  auto Start = std::chrono::steady_clock::now();
  for (const CompiledLaunch &Launch : Current->Launches) {
    const ImageInfo &Info = Current->Shapes[Launch.Output];
    Image &Out = Frame[Launch.Output];
    if (Out.width() != Info.Width || Out.height() != Info.Height ||
        Out.channels() != Info.Channels)
      Out = Image(Info.Width, Info.Height, Info.Channels);
    // In-place write: a launch never reads its own output (the kernel DAG
    // is acyclic), so reusing the previous frame's buffer is safe.
    if (!Observe) {
      runCompiledLaunch(Launch.Code, Launch.Root, Launch.Halo, Frame, Out,
                        Effective, TP, Scratch, nullptr, Launch.Jit.get());
    } else {
      std::string Label = "launch " + Launch.Name;
      LaunchTiming Timing;
      TraceSpan Span(Label.c_str(), "sim");
      runCompiledLaunch(Launch.Code, Launch.Root, Launch.Halo, Frame, Out,
                        Effective, TP, Scratch, &Timing, Launch.Jit.get());
      Span.arg("interior_ms", Timing.InteriorMs);
      Span.arg("halo_ms", Timing.HaloMs);
      Span.arg("vm_span", Timing.Mode == VmMode::Span ? 1.0 : 0.0);
      Span.arg("tiling_overlapped",
               Timing.Tiling == TilingStrategy::Overlapped ? 1.0 : 0.0);
      Span.arg("overlap_pixels",
               static_cast<double>(Timing.OverlapPixels));
      MetricsRegistry::global().recordLaunch(
          Current->ProgramName, Launch.Name, Timing.TotalMs,
          Timing.InteriorMs, Timing.HaloMs, Timing.Mode, Timing.Tiling);
    }
  }
  Stats.ExecMs += sinceMs(Start);
  ++Stats.Frames;
}

SessionStats PipelineSession::runFrames(int NumFrames,
                                        const FrameFiller &Fill,
                                        const FrameConsumer &Consume) {
  if (NumFrames <= 0)
    return Stats;

  std::vector<Image> Current = acquireFrame();
  if (Fill)
    Fill(0, Current);
  for (int F = 0; F != NumFrames; ++F) {
    // Double buffering: fill frame F+1 on a filler thread while frame F
    // executes on the session's thread pool. The two frames are disjoint
    // buffers; join() orders the fill before the swap below.
    std::vector<Image> Next;
    std::thread Filler;
    if (F + 1 != NumFrames) {
      Next = acquireFrame();
      if (Fill)
        Filler = std::thread([&Fill, &Next, F] {
          // Spanning the fill on its own thread makes the fill/exec
          // overlap directly visible on the trace timeline.
          TraceSpan Span("session.fill", "session");
          Fill(F + 1, Next);
        });
    }

    runFrame(Current);
    if (Consume)
      Consume(F, Current);

    if (Filler.joinable())
      Filler.join();
    if (F + 1 != NumFrames) {
      releaseFrame(std::move(Current));
      Current = std::move(Next);
    }
  }
  releaseFrame(std::move(Current));
  return Stats;
}
