//===- sim/LazyRuntime.h - Materialization of lazy pipelines ----*- C++ -*-===//
///
/// \file
/// The execution half of the lazy frontend (frontend/Lazy.h): lowering a
/// recorded DAG, running the full static-analysis gate, fusing, and
/// executing through the session machinery. Split from the frontend
/// because materialization needs fusion + analysis + sessions, which the
/// frontend layer (ir + support only) must not depend on.
///
/// Materialization stages (docs/FRONTEND.md):
///
///   record -> lower -> lint -> fuse -> legality/footprint/bytecode ->
///   intervals -> [session: optimize -> JIT -> execute]
///
/// compileLazy covers everything up to the session: it produces a
/// MaterializedPipeline holding the canonical live Program, its fused
/// form, and the collected diagnostics. Lazy programs are untrusted
/// input, so the gate is strict: any KF-* error (or warning under Werror)
/// rejects the pipeline -- the session layer, whose compile path aborts
/// on invalid programs by contract, never sees one that failed the gate.
///
/// runLazy executes a frame of a materialized pipeline through a
/// PipelineSession against a PlanCache, so repeated materializations of
/// structurally identical DAGs -- the same *shape*, regardless of the
/// user's value names -- hit the cache warm (frontend/Lazy.h explains the
/// canonical naming that makes the structural hash shape-keyed).
///
//===----------------------------------------------------------------------===//

#ifndef KF_SIM_LAZYRUNTIME_H
#define KF_SIM_LAZYRUNTIME_H

#include "analysis/Diagnostics.h"
#include "frontend/Lazy.h"
#include "fusion/HardwareModel.h"
#include "fusion/Legality.h"
#include "sim/Session.h"

namespace kf {

/// Gate configuration of one materialization.
struct LazyGateOptions {
  HardwareModel HW;         ///< Cost model driving the min-cut partitioner.
  LegalityOptions Legality; ///< Fusion legality rules.
  bool Fuse = true;         ///< false = singleton partition (op-at-a-time).
  bool Werror = false;      ///< Reject on analyzer warnings too.
};

/// The result of compileLazy: the canonical live program, its fused form,
/// and the gate's diagnostics. Move-only (owns the Program the
/// FusedProgram points into; the heap-allocated Program keeps its address
/// across moves, so Fused.Source stays valid).
struct MaterializedPipeline {
  bool Ok = false;          ///< Gate passed; safe to execute.
  DiagnosticEngine Diags;   ///< Everything the gate reported.
  std::unique_ptr<Program> Prog; ///< Canonical live program.
  FusedProgram Fused;       ///< Fused form of *Prog.
  /// User input name -> image id of *Prog (what a frame must fill).
  std::vector<std::pair<std::string, ImageId>> Inputs;
  /// Image ids of the requested outputs, in request order.
  std::vector<ImageId> Outputs;
  /// Prog->structuralHash(): the shape key the plan cache builds on.
  uint64_t StructuralHash = 0;
};

/// Lowers \p LP for the requested \p Outputs and runs the full gate:
/// frontend issues, program lint (over the *unpruned* DAG, so problems in
/// branches that pruning would drop are still rejected), fusion, fused
/// legality, per-launch footprint + bytecode validation, and interval
/// interpretation. Never throws or aborts on malformed input; inspect
/// MaterializedPipeline::Ok and ::Diags.
///
/// Dead branches (recorded ops no requested output depends on) are pruned
/// silently: KF-P09/KF-P10 dead-code warnings do not fire for lazy
/// pipelines, since unrequested branches are the normal idiom of a
/// record-everything client.
MaterializedPipeline compileLazy(const LazyPipeline &LP,
                                 const std::vector<LazyImage> &Outputs,
                                 const LazyGateOptions &Gate = {});

/// Counters of one runLazy call.
struct LazyRunStats {
  bool PlanWasHit = false; ///< Plan came out of the cache warm.
  double CompileMs = 0.0;  ///< Plan compilation time (0 on a hit).
  double ExecMs = 0.0;     ///< Frame execution time.
  uint64_t PlanKey = 0;    ///< Cache key the frame executed under.
};

/// The result of one lazy frame execution.
struct LazyRunResult {
  bool Ok = false;
  DiagnosticEngine Diags; ///< Input-contract errors (KF-P00), if any.
  /// One image per requested output, in request order.
  std::vector<Image> Outputs;
  LazyRunStats Stats;
};

/// Executes one frame of \p MP through a PipelineSession. \p Inputs maps
/// user input names to frames; every external input of the pipeline must
/// be present with the declared shape (values in [0, 1], the repo-wide
/// input contract the interval gate assumes). \p Cache defaults to the
/// process-wide plan cache; pass the server's cache to share plans with
/// other tenants. \p SharedPool, when given, borrows a server thread pool
/// instead of building one.
LazyRunResult runLazy(const MaterializedPipeline &MP,
                      const std::vector<std::pair<std::string, const Image *>>
                          &Inputs,
                      const ExecutionOptions &Exec = ExecutionOptions(),
                      PlanCache *Cache = nullptr,
                      ThreadPool *SharedPool = nullptr);

/// Convenience wrapper: compileLazy + runLazy in one call -- the
/// `materialize()` of the record-and-fuse API. On gate rejection the
/// result carries the gate's diagnostics and no outputs.
LazyRunResult materializeLazy(
    const LazyPipeline &LP, const std::vector<LazyImage> &Outputs,
    const std::vector<std::pair<std::string, const Image *>> &Inputs,
    const ExecutionOptions &Exec = ExecutionOptions(),
    const LazyGateOptions &Gate = {}, PlanCache *Cache = nullptr,
    ThreadPool *SharedPool = nullptr);

} // namespace kf

#endif // KF_SIM_LAZYRUNTIME_H
