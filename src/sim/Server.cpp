//===- sim/Server.cpp -------------------------------------------------------===//

#include "sim/Server.h"

#include "sim/Metrics.h"
#include "support/Trace.h"

#include <chrono>

using namespace kf;

namespace {

double elapsedMs(std::chrono::steady_clock::time_point From,
                 std::chrono::steady_clock::time_point To) {
  return std::chrono::duration<double, std::milli>(To - From).count();
}

} // namespace

PipelineServer::PipelineServer(ServerOptions OptionsIn)
    : Options(OptionsIn),
      Pool(resolveThreadCount(Options.Threads)),
      Cache(Options.PlanCacheCapacity) {
  Dispatchers.reserve(Options.Dispatchers);
  for (unsigned I = 0; I != Options.Dispatchers; ++I)
    Dispatchers.emplace_back([this] { dispatchLoop(); });
}

PipelineServer::~PipelineServer() {
  // With live dispatchers, queued frames drain before shutdown. With
  // none, there is nobody to serve them: undispatched frames are
  // discarded (drive runPending() first for a clean finish).
  if (!Dispatchers.empty())
    Sched.waitAllIdle();
  Sched.stop();
  for (std::thread &D : Dispatchers)
    D.join();
}

PipelineServer::SessionId PipelineServer::open(const FusedProgram &FP,
                                               ExecutionOptions ExecOptions,
                                               TenantOptions TenantIn) {
  SessionId Id =
      Sched.addSession(TenantIn.QueueCapacity, TenantIn.Weight,
                       TenantIn.Policy);
  auto T = std::make_shared<Tenant>();
  T->Name = TenantIn.Name.empty() ? "s" + std::to_string(Id) : TenantIn.Name;
  T->SchedId = Id;
  // One pool work source per tenant: the same weight that arbitrates
  // frame dispatch also arbitrates tile claims, so a heavy tenant gets
  // proportionally more of both.
  T->PoolSource = Pool.registerSource(T->Name, TenantIn.Weight);
  ExecOptions.Source = T->PoolSource;
  T->Session =
      std::make_unique<PipelineSession>(FP, ExecOptions, &Cache, &Pool);
  {
    std::lock_guard<std::mutex> Lock(TenantsMutex);
    Tenants.emplace(Id, std::move(T));
  }
  return Id;
}

std::shared_ptr<PipelineServer::Tenant>
PipelineServer::findTenant(SessionId Id) const {
  std::lock_guard<std::mutex> Lock(TenantsMutex);
  auto It = Tenants.find(Id);
  return It == Tenants.end() ? nullptr : It->second;
}

bool PipelineServer::submit(SessionId Id, PipelineSession::FrameFiller Fill,
                            PipelineSession::FrameConsumer Consume) {
  std::shared_ptr<Tenant> T = findTenant(Id);
  if (!T)
    return false;
  QueuedFrame Work;
  Work.Fill = std::move(Fill);
  Work.Consume = std::move(Consume);
  // Frame indices must be contiguous in queue order even under
  // concurrent submitters, so the index assignment and the enqueue are
  // one critical section. A Block-policy enqueue parks later submitters
  // here too -- they would block on the full queue anyway.
  std::lock_guard<std::mutex> Lock(T->SubmitMutex);
  Work.Index = T->NextFrame;
  if (!Sched.enqueue(Id, std::move(Work))) {
    if (MetricsRegistry::enabled())
      MetricsRegistry::global().recordServerRejection(T->Name);
    return false;
  }
  ++T->NextFrame;
  if (TraceRecorder::enabled())
    TraceRecorder::global().setGauge(
        "server.queue." + T->Name,
        static_cast<double>(Sched.queueStats(Id).Depth));
  return true;
}

void PipelineServer::serveFrame(Tenant &T, const QueuedFrame &Work) {
  auto DispatchedAt = std::chrono::steady_clock::now();
  double QueueMs = elapsedMs(Work.Enqueued, DispatchedAt);

  TraceSpan Span("server.frame", "server");
  std::vector<Image> Frame = T.Session->acquireFrame();
  if (Work.Fill)
    Work.Fill(Work.Index, Frame);
  T.Session->runFrame(Frame);
  if (Work.Consume)
    Work.Consume(Work.Index, Frame);
  T.Session->releaseFrame(std::move(Frame));

  double ExecMs = elapsedMs(DispatchedAt, std::chrono::steady_clock::now());
  Span.arg("queue_ms", QueueMs);
  Span.arg("exec_ms", ExecMs);
  {
    std::lock_guard<std::mutex> Lock(T.StatsMutex);
    T.LatenciesMs.push_back(QueueMs + ExecMs);
    T.QueueMs += QueueMs;
    T.ExecMs += ExecMs;
    // Session counters snapshot under the same lock: runFrame just
    // finished on this thread and the next frame of this session cannot
    // start until complete(), so the read is quiescent.
    T.SessionSnapshot = T.Session->stats();
  }
  if (MetricsRegistry::enabled())
    MetricsRegistry::global().recordServerFrame(T.Name, QueueMs, ExecMs);
  if (TraceRecorder::enabled())
    TraceRecorder::global().setGauge(
        "server.queue." + T.Name,
        static_cast<double>(Sched.queueStats(T.SchedId).Depth));
}

void PipelineServer::dispatchLoop() {
  unsigned Id = 0;
  QueuedFrame Work;
  while (Sched.dequeue(Id, Work)) {
    // The tenant is pinned by shared_ptr: close() may drop the map entry,
    // but it first waits for this frame's complete().
    if (std::shared_ptr<Tenant> T = findTenant(Id))
      serveFrame(*T, Work);
    Sched.complete(Id);
  }
}

size_t PipelineServer::runPending(size_t MaxFrames) {
  size_t Served = 0;
  unsigned Id = 0;
  QueuedFrame Work;
  while (Served != MaxFrames && Sched.tryDequeue(Id, Work)) {
    if (std::shared_ptr<Tenant> T = findTenant(Id))
      serveFrame(*T, Work);
    Sched.complete(Id);
    ++Served;
  }
  return Served;
}

void PipelineServer::drain(SessionId Id) { Sched.waitSessionIdle(Id); }

void PipelineServer::drainAll() { Sched.waitAllIdle(); }

void PipelineServer::close(SessionId Id) {
  // Closed first so racing submits fail instead of landing in a dying
  // queue; then the already-admitted frames drain (the dispatchers, or a
  // runPending() driver, keep serving them).
  Sched.closeSession(Id);
  Sched.waitSessionIdle(Id);
  Sched.removeSession(Id);
  std::lock_guard<std::mutex> Lock(TenantsMutex);
  Tenants.erase(Id);
}

TenantStats PipelineServer::tenantStats(SessionId Id) const {
  TenantStats Stats;
  std::shared_ptr<Tenant> T = findTenant(Id);
  if (!T)
    return Stats;
  FrameQueueStats Queue = Sched.queueStats(Id);
  Stats.Name = T->Name;
  Stats.Submitted = Queue.Enqueued;
  Stats.Completed = Queue.Completed;
  Stats.Rejected = Queue.Rejected;
  Stats.MaxQueueDepth = Queue.MaxDepth;
  std::lock_guard<std::mutex> Lock(T->StatsMutex);
  Stats.QueueMs = T->QueueMs;
  Stats.ExecMs = T->ExecMs;
  Stats.LatenciesMs = T->LatenciesMs;
  Stats.Session = T->SessionSnapshot;
  return Stats;
}
