//===- sim/CostModel.cpp ----------------------------------------------------===//

#include "sim/CostModel.h"

#include "fusion/Legality.h"
#include "ir/CostInfo.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <map>

using namespace kf;

double ProgramStats::totalGlobalBytes() const {
  double Sum = 0.0;
  for (const LaunchStats &L : Launches)
    Sum += L.totalGlobalBytes();
  return Sum;
}

double ProgramStats::totalAluOps() const {
  double Sum = 0.0;
  for (const LaunchStats &L : Launches)
    Sum += L.AluOps;
  return Sum;
}

namespace {

/// Tile area overhead of staging a window input: loaded elements per
/// computed element for a block of Tile threads with halo \p Halo.
double tileLoadFactor(const TileShape &Tile, int Halo) {
  if (Halo <= 0)
    return 1.0;
  double TileElems = static_cast<double>(Tile.Width + 2 * Halo) *
                     (Tile.Height + 2 * Halo);
  return TileElems / (static_cast<double>(Tile.Width) * Tile.Height);
}

/// Accounts one fused kernel.
class LaunchAccountant {
public:
  LaunchAccountant(const Program &P, const FusedKernel &FK,
                   const TileShape &Tile, TilingStrategy Strategy)
      : P(P), FK(FK), Tile(Tile),
        Overlapped(Strategy == TilingStrategy::Overlapped) {
    for (const FusedStage &Stage : FK.Stages)
      Costs.emplace(Stage.Kernel, analyzeKernelCost(P, Stage.Kernel));
  }

  LaunchStats account() {
    LaunchStats Stats;
    Stats.Name = FK.Name;
    const ImageInfo &DestOut = P.image(P.kernel(FK.Destination).Output);
    Stats.OutputPixels = DestOut.iterationSpace();
    Stats.OutputChannels = DestOut.Channels;
    Stats.NumStages = static_cast<unsigned>(FK.Stages.size());
    double Samples =
        static_cast<double>(Stats.OutputPixels) * Stats.OutputChannels;

    computeSpreads();

    // Destination writes are the only global stores (one image per
    // destination; a single one under the paper's rules).
    for (KernelId DestId : FK.Destinations) {
      const ImageInfo &Info = P.image(P.kernel(DestId).Output);
      Stats.GlobalBytesWritten +=
          static_cast<double>(Info.iterationSpace()) * Info.Channels * 4.0;
    }

    // Global reads: one pass over each distinct external image, loaded
    // through the cache/tiles with a footprint grown by the evaluation
    // spread of the reading stages.
    std::map<ImageId, int> ExternalHalo; // image -> max effective halo
    for (const FusedStage &Stage : FK.Stages) {
      const Kernel &K = P.kernel(Stage.Kernel);
      const KernelCost &Cost = Costs.at(Stage.Kernel);
      for (size_t In = 0; In != K.Inputs.size(); ++In) {
        ImageId Img = K.Inputs[In];
        if (isInternal(Img))
          continue;
        const InputFootprint &F = Cost.Footprints[In];
        int Halo = Spread.at(Stage.Kernel) + std::max(F.HaloX, F.HaloY);
        auto [It, Inserted] = ExternalHalo.emplace(Img, Halo);
        if (!Inserted)
          It->second = std::max(It->second, Halo);
      }
    }
    for (const auto &[Img, Halo] : ExternalHalo) {
      const ImageInfo &Info = P.image(Img);
      double ImgSamples =
          static_cast<double>(Info.iterationSpace()) * Info.Channels;
      Stats.GlobalBytesRead += ImgSamples * 4.0 * tileLoadFactor(Tile, Halo);
    }

    // Per-stage operations and on-chip traffic. Interior/halo evaluates
    // a stage Multiplicity times per output pixel (recompute chains);
    // overlapped tiling evaluates it exactly once per cell of its
    // margin-grown plane, i.e. an area factor of the evaluation spread.
    for (const FusedStage &Stage : FK.Stages) {
      const Kernel &K = P.kernel(Stage.Kernel);
      const KernelCost &Cost = Costs.at(Stage.Kernel);
      double M = Overlapped
                     ? tileLoadFactor(Tile, Spread.at(Stage.Kernel))
                     : Stage.Multiplicity;
      Stats.AluOps += M * static_cast<double>(Cost.NumAlu) * Samples;
      Stats.SfuOps += M * static_cast<double>(Cost.NumSfu) * Samples;

      if (Overlapped) {
        // Every eliminated stage fills a scratch plane: one on-chip
        // write per plane cell.
        if (!FK.isDestination(Stage.Kernel))
          Stats.SharedAccesses += M * Samples;
      } else if (Stage.OutputPlacement == Placement::SharedTile) {
        // Tile-staged stages pay shared writes for the fill.
        Stats.SharedAccesses += M * Samples;
      }

      for (size_t In = 0; In != K.Inputs.size(); ++In) {
        ImageId Img = K.Inputs[In];
        const InputFootprint &F = Cost.Footprints[In];
        int Halo = std::max(F.HaloX, F.HaloY);
        double Reads = M * static_cast<double>(F.ReadsPerPixel);
        if (!Overlapped) {
          // Recompute chains revisit overlapping positions; the generated
          // (unrolled) code loads each distinct pixel of the grown
          // footprint once, so cap the charge at the distinct-footprint
          // size. (Overlapped planes are evaluated once per cell -- no
          // revisits, nothing to cap.)
          double FootprintSide =
              2.0 * (Spread.at(Stage.Kernel) + Halo) + 1.0;
          Reads = std::min(Reads, FootprintSide * FootprintSide);
        }
        if (isInternal(Img)) {
          if (Overlapped) {
            // Internal reads hit the producer's scratch plane: on-chip.
            Stats.SharedAccesses += Reads * Samples;
            continue;
          }
          const FusedStage *Producer = FK.findStage(*P.producerOf(Img));
          assert(Producer && "internal image without a stage producer");
          if (Producer->OutputPlacement == Placement::SharedTile)
            Stats.SharedAccesses += Reads * Samples;
          // Register / RegisterRecompute: register traffic, free.
          continue;
        }
        // External image: the first load per pixel fills the tile/cache
        // (accounted as global bytes above); repeats are on-chip.
        if (F.WindowAccess || Halo > 0) {
          Stats.SharedAccesses += tileLoadFactor(Tile, Halo) * Samples;
          Stats.SharedAccesses += Reads * Samples;
        } else if (Reads > 1.0) {
          Stats.SharedAccesses += (Reads - 1.0) * Samples;
        }
      }
    }

    // Shared-memory footprint per thread block: tiles for external window
    // inputs plus tiles staging internal intermediates.
    for (const FusedStage &Stage : FK.Stages) {
      const Kernel &K = P.kernel(Stage.Kernel);
      const KernelCost &Cost = Costs.at(Stage.Kernel);
      for (size_t In = 0; In != K.Inputs.size(); ++In) {
        ImageId Img = K.Inputs[In];
        const InputFootprint &F = Cost.Footprints[In];
        int Halo = std::max(F.HaloX, F.HaloY);
        bool Windowed = F.WindowAccess || Halo > 0;
        if (!Windowed)
          continue;
        if (isInternal(Img)) {
          if (Overlapped)
            continue; // Plane bytes accounted below instead of tiles.
          const FusedStage *Producer = FK.findStage(*P.producerOf(Img));
          if (Producer->OutputPlacement != Placement::SharedTile)
            continue; // Recomputed: no tile.
        }
        const ImageInfo &Info = P.image(Img);
        Stats.SharedBytesPerBlock +=
            static_cast<double>(Tile.Width + 2 * Halo) *
            (Tile.Height + 2 * Halo) * 4.0 * Info.Channels;
      }
    }

    // Overlapped tiling keeps one margin-grown scratch plane per
    // eliminated stage resident for the tile's lifetime -- that is the
    // occupancy price of never synchronizing between tiles.
    if (Overlapped)
      for (const FusedStage &Stage : FK.Stages) {
        if (FK.isDestination(Stage.Kernel))
          continue;
        const ImageInfo &Info = P.image(P.kernel(Stage.Kernel).Output);
        int S = Spread.at(Stage.Kernel);
        Stats.SharedBytesPerBlock +=
            static_cast<double>(Tile.Width + 2 * S) *
            (Tile.Height + 2 * S) * 4.0 * Info.Channels;
      }
    return Stats;
  }

private:
  bool isInternal(ImageId Img) const {
    std::optional<KernelId> Producer = P.producerOf(Img);
    if (!Producer)
      return false;
    const FusedStage *Stage = FK.findStage(*Producer);
    return Stage && !FK.isDestination(Stage->Kernel);
  }

  /// Evaluation spread: how far from the output pixel a stage gets
  /// evaluated, via recompute chains (0 for the destination).
  void computeSpreads() {
    for (auto It = FK.Stages.rbegin(); It != FK.Stages.rend(); ++It) {
      const FusedStage &Stage = *It;
      if (FK.isDestination(Stage.Kernel)) {
        Spread[Stage.Kernel] = 0;
        continue;
      }
      ImageId Out = P.kernel(Stage.Kernel).Output;
      int MaxSpread = 0;
      for (KernelId Consumer : P.consumersOf(Out)) {
        const KernelCost &Cost = Costs.at(Consumer);
        const Kernel &CK = P.kernel(Consumer);
        int AccessHalo = 0;
        for (size_t In = 0; In != CK.Inputs.size(); ++In)
          if (CK.Inputs[In] == Out)
            AccessHalo = std::max(AccessHalo,
                                  std::max(Cost.Footprints[In].HaloX,
                                           Cost.Footprints[In].HaloY));
        MaxSpread =
            std::max(MaxSpread, Spread.at(Consumer) + AccessHalo);
      }
      Spread[Stage.Kernel] = MaxSpread;
    }
  }

  const Program &P;
  const FusedKernel &FK;
  TileShape Tile;
  bool Overlapped;
  std::map<KernelId, KernelCost> Costs;
  std::map<KernelId, int> Spread;
};

} // namespace

ProgramStats kf::accountFusedProgram(const FusedProgram &FP,
                                     const TileShape &Tile,
                                     TilingStrategy Strategy) {
  ProgramStats Stats;
  for (const FusedKernel &FK : FP.Kernels) {
    LaunchAccountant Accountant(*FP.Source, FK, Tile, Strategy);
    Stats.Launches.push_back(Accountant.account());
  }
  return Stats;
}

double kf::launchOccupancy(const LaunchStats &Stats, const DeviceSpec &Device,
                           const CostModelParams &Params) {
  int ThreadsPerBlock = Params.Tile.Width * Params.Tile.Height;
  int BlocksByShared =
      Stats.SharedBytesPerBlock > 0.0
          ? static_cast<int>(Device.SharedMemPerSMBytes /
                             Stats.SharedBytesPerBlock)
          : Device.MaxBlocksPerSM;
  int BlocksByRegs = Device.RegistersPerSM /
                     (Params.RegistersPerThread * ThreadsPerBlock);
  int Blocks = std::max(
      1, std::min({Device.MaxBlocksPerSM, BlocksByShared, BlocksByRegs}));
  double Occ = static_cast<double>(Blocks) * ThreadsPerBlock /
               Device.MaxThreadsPerSM;
  return std::min(1.0, Occ);
}

double kf::estimateLaunchTimeMs(const LaunchStats &Stats,
                                const DeviceSpec &Device,
                                const CostModelParams &Params) {
  double OpSlots = Stats.AluOps + Params.SfuOpFactor * Stats.SfuOps +
                   Params.SharedAccessFactor * Stats.SharedAccesses;
  double ComputeSec =
      OpSlots / (static_cast<double>(Device.CudaCores) *
                 Device.CoreClockGHz * 1e9);
  double MemSec = Stats.totalGlobalBytes() /
                  (Device.MemBandwidthGBs * 1e9 * Params.MemEfficiency);

  double Occ = launchOccupancy(Stats, Device, Params);
  double LatencyStretch =
      Occ >= Params.OccupancyKnee ? 1.0 : Params.OccupancyKnee / Occ;
  return std::max(ComputeSec, MemSec) * LatencyStretch * 1e3;
}

double kf::estimateProgramTimeMs(const ProgramStats &Stats,
                                 const DeviceSpec &Device,
                                 const CostModelParams &Params) {
  double TotalMs = 0.0;
  for (const LaunchStats &L : Stats.Launches)
    TotalMs += Device.LaunchOverheadUs * 1e-3 +
               estimateLaunchTimeMs(L, Device, Params);
  return TotalMs;
}
