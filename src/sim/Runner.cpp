//===- sim/Runner.cpp -------------------------------------------------------===//

#include "sim/Runner.h"

#include "support/Random.h"

#include <cassert>
#include <cmath>

using namespace kf;

BoxStats kf::simulateRuns(double BaseTimeMs, int Runs,
                          const NoiseModel &Noise) {
  assert(Runs > 0 && "need at least one run");
  Rng Generator(Noise.Seed);
  std::vector<double> Samples;
  Samples.reserve(Runs);
  for (int Run = 0; Run != Runs; ++Run) {
    double Jitter = 1.0 + Noise.JitterStdDev * std::abs(Generator.nextGaussian());
    double Spike = Generator.nextDouble() < Noise.SpikeProbability
                       ? Generator.uniform(0.0, Noise.SpikeMax)
                       : 0.0;
    Samples.push_back(BaseTimeMs * (Jitter + Spike));
  }
  return computeBoxStats(std::move(Samples));
}

BoxStats kf::measureFusedProgram(const FusedProgram &FP,
                                 const DeviceSpec &Device,
                                 const CostModelParams &Params, int Runs,
                                 const NoiseModel &Noise) {
  ProgramStats Stats = accountFusedProgram(FP, Params.Tile);
  double BaseMs = estimateProgramTimeMs(Stats, Device, Params);
  return simulateRuns(BaseMs, Runs, Noise);
}
