//===- sim/Tuner.cpp ----------------------------------------------------------===//

#include "sim/Tuner.h"

#include "fusion/MinCutPartitioner.h"
#include "transform/Fuser.h"

#include <cassert>

using namespace kf;

std::vector<TuneCandidate> kf::defaultTuneGrid() {
  std::vector<TuneCandidate> Grid;
  const double Thresholds[] = {1.0, 1.5, 2.0, 3.0, 4.0, 8.0};
  const TileShape Tiles[] = {{32, 4}, {32, 8}, {64, 2}, {16, 8}, {16, 16}};
  for (double Threshold : Thresholds)
    for (const TileShape &Tile : Tiles)
      Grid.push_back(TuneCandidate{Threshold, Tile});
  return Grid;
}

TuneResult kf::tuneFusion(const Program &P, const DeviceSpec &Device,
                          const HardwareModel &BaseHW,
                          const CostModelParams &BaseParams,
                          const std::vector<TuneCandidate> &Grid) {
  assert(!Grid.empty() && "tuning needs at least one candidate");

  TuneResult Result;
  bool HaveBest = false;
  for (const TuneCandidate &Candidate : Grid) {
    HardwareModel HW = BaseHW;
    HW.SharedMemThreshold = Candidate.SharedMemThreshold;
    MinCutFusionResult Fusion = runMinCutFusion(P, HW);
    FusedProgram FP = fuseProgram(P, Fusion.Blocks, FusionStyle::Optimized,
                                  Candidate.Tile);
    CostModelParams Params = BaseParams;
    Params.Tile = Candidate.Tile;
    ProgramStats Stats = accountFusedProgram(FP, Candidate.Tile);

    TunePoint Point;
    Point.Candidate = Candidate;
    Point.TimeMs = estimateProgramTimeMs(Stats, Device, Params);
    Point.Launches = FP.numLaunches();
    Result.Explored.push_back(Point);

    if (!HaveBest || Point.TimeMs < Result.Best.TimeMs) {
      HaveBest = true;
      Result.Best = Point;
      Result.BestPartition = Fusion.Blocks;
    }
  }
  return Result;
}
