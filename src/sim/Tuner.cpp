//===- sim/Tuner.cpp ----------------------------------------------------------===//

#include "sim/Tuner.h"

#include "fusion/MinCutPartitioner.h"
#include "ir/CostInfo.h"
#include "sim/Metrics.h"
#include "support/Trace.h"
#include "transform/Fuser.h"

#include <cassert>
#include <map>

using namespace kf;

namespace {

/// Extra ALU operations per launch of \p FP, beyond the accountant's
/// placement-based multiplicities, when the interior/halo strategy runs
/// on the host VM. The GPU model caches SharedTile-placed producers in
/// on-chip memory, but the host interior path re-evaluates an eliminated
/// producer at every stage-call site regardless of placement -- the
/// RegisterRecompute recurrence applied to every stage, which compounds
/// through chains of local producers. Indexed like FP.Kernels (the order
/// accountFusedProgram emits launches in).
std::vector<double> hostInteriorRecomputeAlu(const FusedProgram &FP) {
  std::vector<double> Extra(FP.Kernels.size(), 0.0);
  if (!FP.Source)
    return Extra;
  const Program &P = *FP.Source;

  for (size_t L = 0; L != FP.Kernels.size(); ++L) {
    const FusedKernel &FK = FP.Kernels[L];
    if (FK.isSingleton())
      continue;
    std::map<KernelId, KernelCost> Costs;
    for (const FusedStage &Stage : FK.Stages)
      Costs.emplace(Stage.Kernel, analyzeKernelCost(P, Stage.Kernel));

    // Host evaluation multiplicity, reverse-topological: a producer runs
    // once per read of every in-block consumer evaluation.
    std::map<KernelId, double> HostMult;
    for (auto It = FK.Stages.rbegin(); It != FK.Stages.rend(); ++It) {
      KernelId Id = It->Kernel;
      if (FK.isDestination(Id)) {
        HostMult[Id] = 1.0;
        continue;
      }
      ImageId Out = P.kernel(Id).Output;
      double Total = 0.0;
      for (KernelId Consumer : P.consumersOf(Out)) {
        const FusedStage *CS = FK.findStage(Consumer);
        if (!CS)
          continue;
        const KernelCost &Cost = Costs.at(Consumer);
        const Kernel &CK = P.kernel(Consumer);
        for (size_t In = 0; In != CK.Inputs.size(); ++In)
          if (CK.Inputs[In] == Out)
            Total += HostMult[Consumer] *
                     static_cast<double>(Cost.Footprints[In].ReadsPerPixel);
      }
      HostMult[Id] = std::max(1.0, Total);
    }

    const ImageInfo &DestOut = P.image(P.kernel(FK.Destination).Output);
    double Samples = static_cast<double>(DestOut.iterationSpace()) *
                     DestOut.Channels;
    for (const FusedStage &Stage : FK.Stages) {
      if (FK.isDestination(Stage.Kernel))
        continue;
      double Host = HostMult[Stage.Kernel];
      if (Host > Stage.Multiplicity)
        Extra[L] += (Host - Stage.Multiplicity) *
                    static_cast<double>(Costs.at(Stage.Kernel).NumAlu) *
                    Samples;
    }
  }
  return Extra;
}

} // namespace

std::vector<TuneCandidate> kf::defaultTuneGrid() {
  std::vector<TuneCandidate> Grid;
  const double Thresholds[] = {1.0, 1.5, 2.0, 3.0, 4.0, 8.0};
  const TileShape Tiles[] = {{32, 4}, {32, 8}, {64, 2}, {16, 8}, {16, 16}};
  for (double Threshold : Thresholds)
    for (const TileShape &Tile : Tiles)
      Grid.push_back(TuneCandidate{Threshold, Tile});
  return Grid;
}

TuneResult kf::tuneFusion(const Program &P, const DeviceSpec &Device,
                          const HardwareModel &BaseHW,
                          const CostModelParams &BaseParams,
                          const std::vector<TuneCandidate> &Grid) {
  assert(!Grid.empty() && "tuning needs at least one candidate");

  TuneResult Result;
  bool HaveBest = false;
  for (const TuneCandidate &Candidate : Grid) {
    HardwareModel HW = BaseHW;
    HW.SharedMemThreshold = Candidate.SharedMemThreshold;
    MinCutFusionResult Fusion = runMinCutFusion(P, HW);
    FusedProgram FP = fuseProgram(P, Fusion.Blocks, FusionStyle::Optimized,
                                  Candidate.Tile);
    CostModelParams Params = BaseParams;
    Params.Tile = Candidate.Tile;
    ProgramStats Stats = accountFusedProgram(FP, Candidate.Tile);

    TunePoint Point;
    Point.Candidate = Candidate;
    Point.TimeMs = estimateProgramTimeMs(Stats, Device, Params);
    Point.Launches = FP.numLaunches();
    Result.Explored.push_back(Point);

    if (!HaveBest || Point.TimeMs < Result.Best.TimeMs) {
      HaveBest = true;
      Result.Best = Point;
      Result.BestPartition = Fusion.Blocks;
    }
  }
  return Result;
}

std::vector<ExecTuneCandidate> kf::defaultExecTuneGrid() {
  std::vector<ExecTuneCandidate> Grid;
  // The interior/halo default decomposition (full rows on the host VM);
  // the cost model scores it with the canonical thread-block shape.
  Grid.push_back(ExecTuneCandidate{TilingStrategy::InteriorHalo, {0, 0}});
  // Overlapped tiling at block shapes whose margin-grown planes stay
  // L2-resident for typical fused reaches.
  const TileShape Tiles[] = {
      {64, 16}, {128, 32}, {256, 32}, {64, 64}, {128, 64}};
  for (const TileShape &Tile : Tiles)
    Grid.push_back(ExecTuneCandidate{TilingStrategy::Overlapped, Tile});
  return Grid;
}

ExecTuneResult kf::tuneExecution(const FusedProgram &FP,
                                 const DeviceSpec &Device,
                                 const CostModelParams &BaseParams,
                                 const std::vector<ExecTuneCandidate> &Grid) {
  assert(!Grid.empty() && "execution tuning needs at least one candidate");

  ExecTuneResult Result;
  bool HaveBest = false;
  TraceSpan Span("tuner.execution", "tuner");
  const std::vector<double> InteriorExtraAlu = hostInteriorRecomputeAlu(FP);
  for (const ExecTuneCandidate &Candidate : Grid) {
    // Non-positive extents mean the executor default; score those with
    // the canonical thread-block shape instead of a degenerate tile.
    const bool HasTile =
        Candidate.Tile.Width > 0 && Candidate.Tile.Height > 0;
    const TileShape CostTile = HasTile ? Candidate.Tile : TileShape();
    CostModelParams Params = BaseParams;
    Params.Tile = CostTile;
    ProgramStats Stats =
        accountFusedProgram(FP, CostTile, Candidate.Strategy);
    // The accountant models the GPU's shared-memory caching; the host VM
    // the tuner is choosing for recomputes per stage-call instead.
    if (Candidate.Strategy == TilingStrategy::InteriorHalo)
      for (size_t L = 0;
           L < Stats.Launches.size() && L < InteriorExtraAlu.size(); ++L)
        Stats.Launches[L].AluOps += InteriorExtraAlu[L];

    ExecTunePoint Point;
    Point.Candidate = Candidate;
    Point.TimeMs = estimateProgramTimeMs(Stats, Device, Params);
    Result.Explored.push_back(Point);

    if (TraceRecorder::enabled()) {
      TraceSpan CandidateSpan("tuner.candidate", "tuner");
      CandidateSpan.arg("overlapped",
                        Candidate.Strategy == TilingStrategy::Overlapped
                            ? 1.0
                            : 0.0);
      CandidateSpan.arg("tile_w", static_cast<double>(Candidate.Tile.Width));
      CandidateSpan.arg("tile_h",
                        static_cast<double>(Candidate.Tile.Height));
      CandidateSpan.arg("predicted_ms", Point.TimeMs);
    }

    if (!HaveBest || Point.TimeMs < Result.Best.TimeMs) {
      HaveBest = true;
      Result.Best = Point;
    }
  }
  Span.arg("best_overlapped",
           Result.Best.Candidate.Strategy == TilingStrategy::Overlapped
               ? 1.0
               : 0.0);
  Span.arg("best_tile_w",
           static_cast<double>(Result.Best.Candidate.Tile.Width));
  Span.arg("best_tile_h",
           static_cast<double>(Result.Best.Candidate.Tile.Height));
  Span.arg("best_predicted_ms", Result.Best.TimeMs);
  Span.arg("candidates", static_cast<double>(Grid.size()));

  if (MetricsRegistry::enabled()) {
    TunerDecisionRecord Decision;
    Decision.Program = FP.Source ? FP.Source->name() : std::string();
    Decision.Strategy = Result.Best.Candidate.Strategy;
    Decision.TileWidth = Result.Best.Candidate.Tile.Width;
    Decision.TileHeight = Result.Best.Candidate.Tile.Height;
    Decision.PredictedMs = Result.Best.TimeMs;
    Decision.Candidates = static_cast<unsigned>(Grid.size());
    MetricsRegistry::global().recordTunerDecision(Decision);
  }
  return Result;
}
