//===- sim/Session.h - Streaming pipeline sessions --------------*- C++ -*-===//
///
/// \file
/// The serving layer: a PipelineSession applies one fused program to a
/// stream of frames, the shape of a realistic deployment (the same
/// pipeline over millions of camera frames). Where runFusedVm pays
/// bytecode compilation, scratch setup, thread-pool construction, and
/// buffer allocation on every call, a session pays them once:
///
///   - CompiledPlan: the immutable compile-once artifact -- per-launch
///     staged bytecode (compileFusedKernel), interior/halo split, and the
///     pool allocation plan. Self-contained: executing a plan needs no
///     Program or FusedProgram.
///   - PlanCache: an LRU cache of CompiledPlans keyed by the content hash
///     of the program IR (Program::structuralHash), the fused structure,
///     and the ExecutionOptions, with hit/miss/eviction counters. Runtime
///     fusion systems amortize repeated launches exactly this way
///     (Kristensen et al., "Fusion of Array Operations at Runtime").
///   - FramePool: recycles whole frame buffers (one std::vector<Image>
///     pool per in-flight frame) so steady-state frames allocate nothing.
///   - runFrames: streams N frames, double-buffering the input fill of
///     frame i+1 on a filler thread while frame i executes on the
///     session's persistent ThreadPool.
///
/// Results are bit-identical to a fresh runFusedVm / runFused call per
/// frame at any thread count; tests/test_session.cpp asserts this
/// differentially for every registry pipeline.
///
//===----------------------------------------------------------------------===//

#ifndef KF_SIM_SESSION_H
#define KF_SIM_SESSION_H

#include "ir/VmOptimizer.h"
#include "sim/Executor.h"

#include <condition_variable>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace kf {

struct JitProgram;

/// Order-independent hash of the execution options: every field is folded
/// in as hash(field name) * hash(field value) and the per-field hashes
/// XOR-combine, so the result is stable across field reordering in
/// ExecutionOptions (reordering the struct -- and thus the fold order --
/// cannot silently change every cache key).
uint64_t hashExecutionOptions(const ExecutionOptions &Options);

/// One named field of the options hash; exposed so tests can assert the
/// order-independence directly.
uint64_t hashNamedField(const char *Name, uint64_t Value);

/// One launch of a compiled plan: a staged bytecode program, the root
/// stage computing the destination, the interior/halo split, and the JIT
/// artifact (src/jit) compiled from the validated bytecode. Jit is null
/// when JIT compilation refused the program (validator gate); such a
/// launch runs the span interpreter under every mode.
struct CompiledLaunch {
  std::string Name;   ///< Fused kernel name (trace/metrics label).
  StagedVmProgram Code;
  uint16_t Root = 0;
  ImageId Output = 0; ///< Pool image the launch writes.
  int Halo = 0;
  /// Compiled-per-plan JIT chain, cached in the PlanCache next to the
  /// bytecode and shared read-only across frames and sessions.
  std::shared_ptr<const JitProgram> Jit;
  /// Per-stage interval facts the abstract interpreter proved for the
  /// bytecode as *compiled* (analysis/IntervalAnalysis.h) -- the
  /// optimizer's evidence, cached so tests and tools can audit what the
  /// rewrite was gated on. Indexed like the pre-optimization stages.
  std::vector<StageValueFacts> Facts;
  /// What the fact-gated optimizer did to this launch (all zero under
  /// KF_OPT=off / OptMode::Off, or when nothing was provable).
  VmOptStats OptStats;
};

/// The execution-tuning decision baked into a plan compiled under
/// TilingStrategy::Tuned: compilePlan runs the execution autotuner
/// (sim/Tuner.h, tuneExecution) once and every frame of the plan then
/// runs the winning strategy -- and, when the user left the tile shape
/// unset, the winning tile extents. Inactive (all defaults) for plans
/// compiled under an explicit strategy.
struct PlanTuning {
  bool Active = false;
  TilingStrategy Strategy = TilingStrategy::InteriorHalo;
  int TileWidth = 0;        ///< 0 = executor default for the strategy.
  int TileHeight = 0;
  double PredictedMs = 0.0; ///< Winning candidate's model estimate.
};

/// The immutable compile-once artifact of one (program, fused structure,
/// options) configuration. Shared between sessions via shared_ptr; never
/// mutated after compilation.
struct CompiledPlan {
  uint64_t Key = 0;           ///< Cache key the plan was compiled under.
  std::string ProgramName;
  std::vector<ImageInfo> Shapes;        ///< Pool allocation plan.
  std::vector<ImageId> ExternalInputs;  ///< Images frames must fill.
  std::vector<CompiledLaunch> Launches; ///< In launch order.
  PlanTuning Tuning;          ///< Autotuner decision (Tuned plans only).
};

/// Cache key of a fused program under given options: content hash of the
/// source IR plus the partition structure and fusion style plus the
/// options. Distinct partitions of one program never collide.
uint64_t planKey(const FusedProgram &FP, const ExecutionOptions &Options);

/// Compiles \p FP into an immutable plan (AST lowering to staged bytecode,
/// interior/halo split, pool shapes) keyed for \p Options.
std::shared_ptr<const CompiledPlan>
compilePlan(const FusedProgram &FP, const ExecutionOptions &Options);

/// Hit/miss counters of a PlanCache.
struct PlanCacheStats {
  uint64_t Hits = 0;
  uint64_t Misses = 0;
  uint64_t Evictions = 0;
  size_t Entries = 0;
};

/// An LRU cache of compiled plans. Thread-safe; sessions may share one
/// cache (e.g. the process-wide globalPlanCache(), or the cross-tenant
/// cache a PipelineServer owns). Entries are shared_ptr<const CompiledPlan>,
/// so a borrower executing a plan keeps it alive even while the LRU evicts
/// it under concurrent misses -- eviction drops the cache's reference,
/// never the borrower's (tests/test_session.cpp pins this down).
class PlanCache {
public:
  explicit PlanCache(size_t CapacityIn = 16);

  /// Returns the cached plan for \p Key (promoting it to most recently
  /// used and counting a hit) or nullptr (counting a miss).
  std::shared_ptr<const CompiledPlan> lookup(uint64_t Key);

  /// Inserts \p Plan under Plan->Key as most recently used, evicting the
  /// least recently used entry beyond capacity. Re-inserting an existing
  /// key replaces the entry.
  void insert(std::shared_ptr<const CompiledPlan> Plan);

  /// Single-flight lookup-or-compile: a hit returns the cached plan; on a
  /// miss, exactly one caller runs \p Compile (outside the cache lock)
  /// and inserts the result, while concurrent callers of the same key
  /// block and then share it. Followers count as hits -- they were served
  /// a shared plan without compiling -- so concurrent first touches by N
  /// tenants cost one miss, one compile, N-1 hits. \p WasHit, when given,
  /// receives whether this caller compiled (false) or shared (true).
  std::shared_ptr<const CompiledPlan> getOrCompile(
      uint64_t Key,
      const std::function<std::shared_ptr<const CompiledPlan>()> &Compile,
      bool *WasHit = nullptr);

  size_t capacity() const { return Capacity; }
  PlanCacheStats stats() const;
  void clear();

private:
  using LruList = std::list<std::shared_ptr<const CompiledPlan>>;

  /// One in-flight compilation (single-flight slot). Latched under Mutex;
  /// followers wait on InFlightCv until Done.
  struct InFlight {
    std::shared_ptr<const CompiledPlan> Plan;
    bool Done = false;
  };

  /// Inserts under an already-held Mutex (shared by insert/getOrCompile).
  void insertLocked(std::shared_ptr<const CompiledPlan> Plan);

  size_t Capacity;
  mutable std::mutex Mutex;
  std::condition_variable InFlightCv;
  LruList Lru; ///< Front = most recently used.
  std::unordered_map<uint64_t, LruList::iterator> Index;
  std::unordered_map<uint64_t, std::shared_ptr<InFlight>> Pending;
  PlanCacheStats Stats;
};

/// The process-wide plan cache sessions use by default.
PlanCache &globalPlanCache();

/// Recycles frame buffers: released frame pools are kept and handed back
/// by acquire() instead of reallocating, so a steady-state streaming loop
/// performs no buffer allocation. Thread-safe: the server's dispatcher
/// threads acquire and release frames of one session's pool concurrently
/// with the submitting client (the pool was single-owner until the server
/// layer arrived; the free list and counters are now guarded).
class FramePool {
public:
  /// A pool of images sized for \p Shapes: recycled when a free frame
  /// exists, freshly allocated otherwise. Only the \p Outputs images are
  /// pre-allocated; external inputs are the filler's responsibility and
  /// eliminated intermediates stay empty.
  std::vector<Image> acquire(const std::vector<ImageInfo> &Shapes,
                             const std::vector<ImageId> &Outputs);

  /// Returns \p Frame to the free list for the next acquire().
  void release(std::vector<Image> &&Frame);

  uint64_t framesReused() const;
  uint64_t framesAllocated() const;

private:
  mutable std::mutex Mutex;
  std::vector<std::vector<Image>> Free;
  uint64_t Reused = 0;
  uint64_t Allocated = 0;
};

/// Aggregate counters of one session.
struct SessionStats {
  uint64_t Frames = 0;        ///< Frames executed.
  uint64_t PlanHits = 0;      ///< Frame-level plan lookups served cached.
  uint64_t PlanMisses = 0;    ///< Frame-level lookups that compiled.
  uint64_t FramesReused = 0;  ///< acquireFrame() served from the pool.
  uint64_t FramesAllocated = 0;
  double CompileMs = 0.0;     ///< Wall time spent compiling plans.
  double ExecMs = 0.0;        ///< Wall time spent executing frames.
};

/// A streaming execution session for one fused program: compile once, run
/// many frames. Not thread-safe itself (one session per stream; the
/// server layer guarantees at most one frame of a session is in flight);
/// the execution inside runs on the session's persistent ThreadPool, or
/// on a borrowed shared pool when the session belongs to a PipelineServer.
class PipelineSession {
public:
  /// \p FP must outlive the session (it is re-consulted when an options
  /// change forces recompilation). Plans go through \p Cache, defaulting
  /// to the process-wide cache. When \p SharedPoolIn is given the session
  /// never builds its own ThreadPool: every launch runs on the borrowed
  /// pool (which must outlive the session), tagged with
  /// ExecutionOptions::Source, and Options.Threads only keys the plan.
  explicit PipelineSession(const FusedProgram &FP,
                           ExecutionOptions OptionsIn = ExecutionOptions(),
                           PlanCache *CacheIn = nullptr,
                           ThreadPool *SharedPoolIn = nullptr);

  const ExecutionOptions &options() const { return Options; }

  /// Changes the execution options. The next frame re-keys the plan
  /// lookup: a changed configuration misses the cache and recompiles
  /// (and rebuilds the thread pool if the worker count changed).
  void setOptions(const ExecutionOptions &NewOptions);

  /// The current plan, compiling (or fetching from the cache) on demand.
  std::shared_ptr<const CompiledPlan> plan();

  /// A frame buffer shaped for the current plan, recycled when possible.
  std::vector<Image> acquireFrame();

  /// Returns a frame obtained from acquireFrame() for reuse.
  void releaseFrame(std::vector<Image> &&Frame);

  /// Executes one frame in place: external inputs of \p Frame must be
  /// filled; launch outputs are (over)written reusing their buffers.
  /// Performs the per-frame plan lookup (hit/miss counted in stats()).
  void runFrame(std::vector<Image> &Frame);

  /// Fills frame \p Index's external inputs in the given pool.
  using FrameFiller = std::function<void(int, std::vector<Image> &)>;
  /// Observes frame \p Index's finished pool (outputs valid).
  using FrameConsumer =
      std::function<void(int, const std::vector<Image> &)>;

  /// Streams \p NumFrames frames: while frame i executes, frame i+1's
  /// input fill runs concurrently on a filler thread into a second
  /// recycled buffer (double buffering). \p Consume, when given, runs on
  /// the session thread after each frame completes. Returns stats().
  SessionStats runFrames(int NumFrames, const FrameFiller &Fill,
                         const FrameConsumer &Consume = nullptr);

  const SessionStats &stats() const { return Stats; }

private:
  const FusedProgram *FP;
  ExecutionOptions Options;
  PlanCache *Cache;
  ThreadPool *SharedPool = nullptr;         ///< Borrowed; wins over Pool.
  std::shared_ptr<const CompiledPlan> Plan; ///< Current plan, if keyed.
  std::unique_ptr<ThreadPool> Pool;         ///< Persistent across frames.
  unsigned PoolThreads = 0;
  VmScratch Scratch;
  FramePool Frames;
  SessionStats Stats;

  // Frame layout, fixed for the session's program: what acquireFrame()
  // allocates without forcing a (counted) plan lookup.
  std::vector<ImageInfo> Shapes;
  std::vector<ImageId> Outputs;

  void ensureThreadPool();
};

} // namespace kf

#endif // KF_SIM_SESSION_H
