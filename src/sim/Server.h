//===- sim/Server.h - Multi-tenant pipeline server --------------*- C++ -*-===//
///
/// \file
/// The serving layer above PipelineSession: a PipelineServer multiplexes N
/// independent client sessions over ONE shared ThreadPool and ONE shared
/// PlanCache. Each tenant keeps its own PipelineSession (frame pool,
/// scratch, stats) but borrows the server's pool -- so tile batches from
/// concurrently in-flight frames of different tenants interleave under
/// stride-fair arbitration (support/Stride.h) instead of running serially
/// -- and shares compiled plans: the cache key is the program's structural
/// hash plus the options hash, so two tenants running the same pipeline
/// under the same options compile once (single-flight) and share the plan.
///
/// Admission is per tenant: a bounded frame queue with a backpressure
/// policy (Block or Reject; sim/Scheduler.h) and a scheduling weight that
/// applies at both granularities -- the frame-level dispatch pick and the
/// tile-level pool arbitration charge the same weight.
///
/// Execution is driven by dispatcher threads (ServerOptions::Dispatchers),
/// or -- with zero dispatchers -- by the caller via runPending(), which
/// dispatches inline in the exact stride order and is what the
/// deterministic fairness tests use. Results are bit-identical to running
/// each tenant's frames serially on a private session: tiles are disjoint
/// and pixels are pure functions of the (immutable) inputs, so no
/// interleaving can change a single bit (tests/test_server.cpp asserts
/// this differentially).
///
/// Observability: `server.frame` trace spans (queue/exec split),
/// `server.queue.<tenant>` depth gauges, and a per-tenant frame-latency
/// table in the MetricsRegistry.
///
//===----------------------------------------------------------------------===//

#ifndef KF_SIM_SERVER_H
#define KF_SIM_SERVER_H

#include "sim/Scheduler.h"
#include "sim/Session.h"

#include <memory>
#include <string>
#include <thread>
#include <vector>

namespace kf {

/// Server-wide configuration.
struct ServerOptions {
  /// Worker threads of the shared pool. 0 resolves via KF_THREADS /
  /// hardware concurrency (resolveThreadCount).
  int Threads = 0;

  /// Capacity of the cross-tenant shared plan cache.
  size_t PlanCacheCapacity = 32;

  /// Dispatcher threads executing queued frames. 0 means no background
  /// execution: the owner drives dispatch with runPending() (inline,
  /// deterministic).
  unsigned Dispatchers = 1;
};

/// Per-tenant configuration.
struct TenantOptions {
  std::string Name;        ///< Trace/metrics label; "" = "s<id>".
  size_t QueueCapacity = 4;///< Bounded frame queue depth (>= 1).
  uint64_t Weight = 1;     ///< Stride weight, frames AND tiles.
  BackpressurePolicy Policy = BackpressurePolicy::Block;
};

/// Aggregate view of one tenant, merging scheduler counters, session
/// counters, and the server's latency samples.
struct TenantStats {
  std::string Name;
  uint64_t Submitted = 0;  ///< Frames admitted to the queue.
  uint64_t Completed = 0;  ///< Frames fully served.
  uint64_t Rejected = 0;   ///< Submissions refused by backpressure.
  size_t MaxQueueDepth = 0;
  double QueueMs = 0.0;    ///< Total admission-to-dispatch wait.
  double ExecMs = 0.0;     ///< Total fill+run+consume time.
  std::vector<double> LatenciesMs; ///< Per-frame queue+exec, serve order.
  SessionStats Session;    ///< The tenant session's own counters.
};

/// A multi-tenant pipeline server. All public member functions are
/// thread-safe; submit() may block (Block policy). Destruction drains
/// every tenant queue, then stops and joins the dispatchers.
class PipelineServer {
public:
  using SessionId = unsigned;

  explicit PipelineServer(ServerOptions OptionsIn = ServerOptions());
  ~PipelineServer();

  PipelineServer(const PipelineServer &) = delete;
  PipelineServer &operator=(const PipelineServer &) = delete;

  /// Opens a tenant session for \p FP (which must outlive the tenant)
  /// under \p ExecOptions. ExecOptions.Source is overwritten with the
  /// tenant's pool work-source tag. Returns the tenant's id.
  SessionId open(const FusedProgram &FP,
                 ExecutionOptions ExecOptions = ExecutionOptions(),
                 TenantOptions TenantIn = TenantOptions());

  /// Submits one frame: \p Fill runs on the dispatching thread to fill
  /// the frame's external inputs, then the frame executes, then
  /// \p Consume (if any) observes the outputs. Both receive the tenant's
  /// 0-based frame index. Returns false when the tenant is closed or the
  /// queue rejected the frame (Reject policy).
  bool submit(SessionId Id, PipelineSession::FrameFiller Fill,
              PipelineSession::FrameConsumer Consume = nullptr);

  /// Blocks until tenant \p Id has no queued or in-flight frames.
  void drain(SessionId Id);

  /// Blocks until no tenant has queued or in-flight frames.
  void drainAll();

  /// Closes tenant \p Id: further submits fail, queued frames drain, then
  /// the tenant's session is destroyed. Safe against concurrent submits.
  void close(SessionId Id);

  /// Inline dispatch: executes up to \p MaxFrames queued frames on the
  /// calling thread, in exact stride order, returning the number served.
  /// The deterministic twin of the dispatcher threads (Dispatchers = 0).
  size_t runPending(size_t MaxFrames = SIZE_MAX);

  /// Snapshot of tenant \p Id's counters (zeroed Name when unknown).
  TenantStats tenantStats(SessionId Id) const;

  PlanCacheStats cacheStats() const { return Cache.stats(); }
  ThreadPool &pool() { return Pool; }
  unsigned threads() const { return Pool.numThreads(); }

private:
  struct Tenant {
    std::string Name;
    std::unique_ptr<PipelineSession> Session;
    unsigned SchedId = 0;   ///< FrameScheduler session id (== SessionId).
    unsigned PoolSource = 0;///< ThreadPool work-source tag.
    std::mutex SubmitMutex; ///< Orders index assignment with enqueue.
    int NextFrame = 0;      ///< Next submit's frame index.
    // Latency samples, guarded by StatsMutex (dispatchers append while
    // clients snapshot).
    mutable std::mutex StatsMutex;
    std::vector<double> LatenciesMs;
    double QueueMs = 0.0;
    double ExecMs = 0.0;
    SessionStats SessionSnapshot; ///< Copied after each served frame.
  };

  void dispatchLoop();
  /// Fills, runs, and consumes one dequeued frame of \p T.
  void serveFrame(Tenant &T, const QueuedFrame &Work);
  /// Shared tail of submit/close/stats: the tenant for \p Id or null.
  std::shared_ptr<Tenant> findTenant(SessionId Id) const;

  ServerOptions Options;
  ThreadPool Pool;
  PlanCache Cache;
  FrameScheduler Sched;

  mutable std::mutex TenantsMutex;
  /// shared_ptr: a dispatcher serving a frame keeps its tenant alive
  /// while close() drops the map entry.
  std::unordered_map<SessionId, std::shared_ptr<Tenant>> Tenants;

  std::vector<std::thread> Dispatchers;
};

} // namespace kf

#endif // KF_SIM_SERVER_H
