//===- sim/CostModel.h - Analytic GPU timing model --------------*- C++ -*-===//
///
/// \file
/// The analytic cost model the simulated evaluation runs on. For every
/// (fused) kernel launch it accounts the quantities kernel fusion trades
/// against each other:
///
///   - global-memory traffic (bytes read/written; fusion eliminates the
///     intermediate images),
///   - on-chip traffic (shared-memory/cache accesses for window reads and
///     tile staging),
///   - computation (ALU/SFU operations, multiplied along recompute chains
///     by the stage multiplicities the fuser derived),
///   - occupancy (shared-memory bytes per thread block limit how many
///     blocks a streaming multiprocessor can host -- the resource
///     pressure Eq. 2 guards against).
///
/// Launch time is launch overhead plus max(compute time, memory time)
/// stretched by an occupancy-dependent latency-hiding factor. The model
/// is deliberately simple and documented; it preserves which variant wins
/// and roughly by what factor, not absolute milliseconds of the authors'
/// testbed (see DESIGN.md, substitutions).
///
//===----------------------------------------------------------------------===//

#ifndef KF_SIM_COSTMODEL_H
#define KF_SIM_COSTMODEL_H

#include "ir/ExprVM.h"
#include "sim/DeviceSpec.h"
#include "transform/Fuser.h"

namespace kf {

/// Accounted quantities of one kernel launch.
struct LaunchStats {
  std::string Name;
  long long OutputPixels = 0;      ///< Iteration-space size.
  int OutputChannels = 1;
  double GlobalBytesRead = 0.0;
  double GlobalBytesWritten = 0.0;
  double SharedAccesses = 0.0;     ///< On-chip reads/writes (count).
  double AluOps = 0.0;
  double SfuOps = 0.0;
  double SharedBytesPerBlock = 0.0;
  unsigned NumStages = 1;

  double totalGlobalBytes() const {
    return GlobalBytesRead + GlobalBytesWritten;
  }
};

/// Accounted quantities of a whole (fused) program execution.
struct ProgramStats {
  std::vector<LaunchStats> Launches;

  double totalGlobalBytes() const;
  double totalAluOps() const;
  unsigned numLaunches() const {
    return static_cast<unsigned>(Launches.size());
  }
};

/// Tunable constants of the timing model.
struct CostModelParams {
  double SfuOpFactor = 8.0;      ///< SFU ops cost this many ALU slots.
  /// Shared/cache access cost in ALU issue slots. Kepler SMXes pair 192
  /// ALU lanes with 32 load/store units, so an on-chip access occupies
  /// roughly six ALU slots of issue bandwidth.
  double SharedAccessFactor = 6.0;
  double MemEfficiency = 0.75;   ///< Achievable fraction of peak bandwidth.
  double OccupancyKnee = 0.5;    ///< Occupancy below this exposes latency.
  int RegistersPerThread = 32;   ///< Constant: fusion does not raise it
                                 ///< (Section II-B1 observation).
  TileShape Tile;                ///< Thread-block shape (threads).
};

/// Statically accounts every launch of \p FP (no pixel execution; counts
/// scale with the iteration space analytically). The tiling strategy
/// changes what a launch pays for: interior/halo charges recompute
/// chains by the fuser's stage multiplicities, overlapped tiling charges
/// each stage once per cell of its margin-grown scratch plane (the
/// redundant-halo area factor) plus the plane fill/read traffic and the
/// plane bytes against the per-block on-chip budget.
ProgramStats accountFusedProgram(
    const FusedProgram &FP, const TileShape &Tile = TileShape(),
    TilingStrategy Strategy = TilingStrategy::InteriorHalo);

/// Occupancy (0..1] of a launch on \p Device: thread capacity under the
/// shared-memory and register limits.
double launchOccupancy(const LaunchStats &Stats, const DeviceSpec &Device,
                       const CostModelParams &Params);

/// Estimated execution time of one launch in milliseconds (excluding
/// launch overhead).
double estimateLaunchTimeMs(const LaunchStats &Stats,
                            const DeviceSpec &Device,
                            const CostModelParams &Params);

/// Estimated end-to-end time of the program in milliseconds, including
/// per-launch overheads.
double estimateProgramTimeMs(const ProgramStats &Stats,
                             const DeviceSpec &Device,
                             const CostModelParams &Params);

} // namespace kf

#endif // KF_SIM_COSTMODEL_H
