//===- sim/Runner.h - Repeated-measurement simulation -----------*- C++ -*-===//
///
/// \file
/// Drives the Figure 6 style evaluation: the paper performs 500 timed runs
/// per implementation per GPU and reports box-plot statistics. The
/// simulator's analytic time is deterministic, so a measurement-noise
/// model (multiplicative jitter plus occasional scheduling spikes, seeded
/// deterministically) supplies the run-to-run variation; the paper itself
/// reports only "small variations" with the box often invisible.
///
//===----------------------------------------------------------------------===//

#ifndef KF_SIM_RUNNER_H
#define KF_SIM_RUNNER_H

#include "sim/CostModel.h"
#include "support/Statistics.h"

namespace kf {

/// Noise model parameters for simulated repeated runs.
struct NoiseModel {
  double JitterStdDev = 0.004; ///< Multiplicative Gaussian jitter.
  double SpikeProbability = 0.02; ///< Chance of a scheduling spike.
  double SpikeMax = 0.03;      ///< Spike magnitude (fraction of the time).
  uint64_t Seed = 0x5eed;      ///< Deterministic RNG seed.
};

/// Simulates \p Runs measurements of a program whose analytic time is
/// \p BaseTimeMs and returns their box statistics.
BoxStats simulateRuns(double BaseTimeMs, int Runs, const NoiseModel &Noise);

/// Convenience: accounts \p FP, estimates its time on \p Device, and
/// simulates \p Runs measurements.
BoxStats measureFusedProgram(const FusedProgram &FP, const DeviceSpec &Device,
                             const CostModelParams &Params, int Runs,
                             const NoiseModel &Noise = NoiseModel());

} // namespace kf

#endif // KF_SIM_RUNNER_H
