//===- sim/Scheduler.h - Frame-level fair scheduling ------------*- C++ -*-===//
///
/// \file
/// The admission-control half of the pipeline server: one bounded frame
/// queue per session with a backpressure policy (submit blocks until a
/// slot frees, or is rejected outright), and a stride-fair dispatcher pick
/// deciding which session's oldest frame executes next. At most one frame
/// of a session is in flight at a time -- frames of one tenant are FIFO
/// and a PipelineSession is not internally thread-safe -- so fairness is
/// arbitrated *between* sessions: the dispatch sequence is a deterministic
/// function of the enqueue history and the session weights
/// (support/Stride.h), which is what lets the no-starvation tests assert
/// exact interleavings instead of timing.
///
/// The FrameScheduler is policy only: it never touches images or plans.
/// The PipelineServer (sim/Server.h) owns the execution side.
///
//===----------------------------------------------------------------------===//

#ifndef KF_SIM_SCHEDULER_H
#define KF_SIM_SCHEDULER_H

#include "sim/Session.h"
#include "support/Stride.h"

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <unordered_map>

namespace kf {

/// What a full per-session queue does to the next submit.
enum class BackpressurePolicy {
  Block, ///< submit blocks until a slot frees (or the session closes).
  Reject ///< submit returns failure immediately; the client retries.
};

/// One queued frame request: how to fill the inputs, what to do with the
/// outputs, and when it entered the queue (the latency clock starts at
/// admission, so queue wait is part of the reported frame latency).
struct QueuedFrame {
  PipelineSession::FrameFiller Fill;
  PipelineSession::FrameConsumer Consume;
  int Index = 0; ///< Per-session frame number, 0-based.
  std::chrono::steady_clock::time_point Enqueued;
};

/// Counters of one session's queue.
struct FrameQueueStats {
  uint64_t Enqueued = 0;  ///< Admitted frames.
  uint64_t Dispatched = 0;///< Frames handed to a dispatcher.
  uint64_t Completed = 0; ///< Frames whose complete() arrived.
  uint64_t Rejected = 0;  ///< Submissions refused (Reject policy).
  size_t Depth = 0;       ///< Current queue depth.
  size_t MaxDepth = 0;    ///< High-water queue depth.
};

/// Bounded per-session frame queues with stride-fair dispatch. All
/// member functions are thread-safe; enqueue() may block (Block policy)
/// and dequeue() blocks until work or stop().
class FrameScheduler {
public:
  /// Registers a session: a queue of at most \p Capacity frames (clamped
  /// to >= 1), scheduling weight \p Weight, and \p Policy on overflow.
  /// Returns the session's scheduler id.
  unsigned addSession(size_t Capacity, uint64_t Weight,
                      BackpressurePolicy Policy);

  /// Marks \p Session closed: every subsequent (and currently blocked)
  /// enqueue fails. Queued frames still dispatch; pair with
  /// waitSessionIdle() to drain before destroying the executor side.
  void closeSession(unsigned Session);

  /// Forgets \p Session entirely. The caller must have closed and drained
  /// it first (no queued frames, none in flight).
  void removeSession(unsigned Session);

  /// Admits one frame into \p Session's queue, stamping its Enqueued
  /// time. Returns false if the session is closed/unknown or the queue is
  /// full under the Reject policy; blocks while full under Block.
  bool enqueue(unsigned Session, QueuedFrame Work);

  /// Blocks until some session has a dispatchable frame (oldest queued
  /// frame of a session with no frame in flight), pops it stride-fairly
  /// and marks the session busy. Returns false when stop() was called.
  /// The caller must pair every successful dequeue with complete().
  bool dequeue(unsigned &Session, QueuedFrame &Work);

  /// Non-blocking dequeue (same pick), for inline dispatch loops.
  bool tryDequeue(unsigned &Session, QueuedFrame &Work);

  /// Marks \p Session's in-flight frame finished: its next queued frame
  /// becomes dispatchable and a blocked producer may take the freed slot.
  void complete(unsigned Session);

  /// Wakes every blocked dequeue() with failure. Queued frames are left
  /// in place (drain before stopping for a clean shutdown).
  void stop();

  /// Blocks until \p Session has no queued and no in-flight frame.
  void waitSessionIdle(unsigned Session);

  /// Blocks until no session has queued or in-flight frames.
  void waitAllIdle();

  FrameQueueStats queueStats(unsigned Session) const;

private:
  struct SessionState {
    std::deque<QueuedFrame> Queue;
    size_t Capacity = 1;
    BackpressurePolicy Policy = BackpressurePolicy::Block;
    unsigned StrideId = 0;
    bool Busy = false;   ///< A dispatched frame has not completed yet.
    bool Closed = false; ///< No further admissions.
    FrameQueueStats Stats;
  };

  /// The stride-fair pick: the session id with minimum pass among
  /// sessions that are dispatchable, or -1. Mutex must be held.
  long long pickLocked() const;
  bool idleLocked(const SessionState &S) const {
    return S.Queue.empty() && !S.Busy;
  }
  /// Pops the oldest frame of \p Session (which must be dispatchable).
  void popLocked(unsigned Session, QueuedFrame &Work);

  mutable std::mutex Mutex;
  std::condition_variable WorkCv;  ///< Dispatchers: work became available.
  std::condition_variable SpaceCv; ///< Producers: a queue slot freed.
  std::condition_variable IdleCv;  ///< Drainers: a session went idle.
  std::unordered_map<unsigned, SessionState> Sessions;
  StrideScheduler Sched;
  unsigned NextId = 0;
  bool Stopped = false;
};

} // namespace kf

#endif // KF_SIM_SCHEDULER_H
