//===- sim/DeviceSpec.h - Simulated GPU device descriptions -----*- C++ -*-===//
///
/// \file
/// Hardware descriptions of the three evaluation GPUs of the paper
/// (Section V-A). The environment of this reproduction has no CUDA
/// devices, so the evaluation executes on an analytic simulator
/// parameterized by these specs; the published figures (core counts,
/// clocks, 48 KiB shared memory per block, 65,536 registers) are taken
/// verbatim from the paper, and bandwidths follow from the memory clocks
/// and the cards' public bus widths.
///
//===----------------------------------------------------------------------===//

#ifndef KF_SIM_DEVICESPEC_H
#define KF_SIM_DEVICESPEC_H

#include <string>
#include <vector>

namespace kf {

/// Static description of one simulated GPU.
struct DeviceSpec {
  std::string Name;
  int CudaCores = 0;
  int NumSMs = 0;
  double CoreClockGHz = 0.0;
  double MemClockMHz = 0.0;   ///< As reported in the paper.
  double MemBandwidthGBs = 0.0;
  int SharedMemPerSMBytes = 48 * 1024;
  int RegistersPerSM = 65536;
  int MaxThreadsPerSM = 2048;
  int MaxBlocksPerSM = 16;
  double LaunchOverheadUs = 5.0; ///< Fixed cost per kernel launch.

  /// Geforce GTX 745: 384 cores @ 1,033 MHz, 900 MHz DDR3 (128-bit).
  static DeviceSpec gtx745();
  /// Geforce GTX 680: 1,536 cores @ 1,058 MHz, 3,004 MHz GDDR5 (256-bit).
  static DeviceSpec gtx680();
  /// Tesla K20c: 2,496 cores @ 706 MHz, 2,600 MHz GDDR5 (320-bit).
  static DeviceSpec k20c();

  /// The three GPUs of the paper's evaluation, in its order.
  static std::vector<DeviceSpec> paperDevices();
};

} // namespace kf

#endif // KF_SIM_DEVICESPEC_H
