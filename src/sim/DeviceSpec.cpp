//===- sim/DeviceSpec.cpp ---------------------------------------------------===//

#include "sim/DeviceSpec.h"

using namespace kf;

DeviceSpec DeviceSpec::gtx745() {
  DeviceSpec D;
  D.Name = "GTX745";
  D.CudaCores = 384; // 3 Maxwell SMMs x 128 cores.
  D.NumSMs = 3;
  D.CoreClockGHz = 1.033;
  D.MemClockMHz = 900.0;
  // 128-bit DDR3 at 900 MHz: 900e6 * 2 * 16 B = 28.8 GB/s.
  D.MemBandwidthGBs = 28.8;
  return D;
}

DeviceSpec DeviceSpec::gtx680() {
  DeviceSpec D;
  D.Name = "GTX680";
  D.CudaCores = 1536; // 8 Kepler SMX x 192 cores.
  D.NumSMs = 8;
  D.CoreClockGHz = 1.058;
  D.MemClockMHz = 3004.0;
  // 256-bit GDDR5 at 3,004 MHz: 3004e6 * 2 * 32 B = 192.3 GB/s.
  D.MemBandwidthGBs = 192.3;
  return D;
}

DeviceSpec DeviceSpec::k20c() {
  DeviceSpec D;
  D.Name = "K20c";
  D.CudaCores = 2496; // 13 Kepler SMX x 192 cores.
  D.NumSMs = 13;
  D.CoreClockGHz = 0.706;
  D.MemClockMHz = 2600.0;
  // 320-bit GDDR5 at 2,600 MHz: 2600e6 * 2 * 40 B = 208 GB/s.
  D.MemBandwidthGBs = 208.0;
  return D;
}

std::vector<DeviceSpec> DeviceSpec::paperDevices() {
  return {gtx745(), gtx680(), k20c()};
}
