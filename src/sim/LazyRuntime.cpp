//===- sim/LazyRuntime.cpp - Materialization of lazy pipelines ------------===//

#include "sim/LazyRuntime.h"

#include "analysis/Analyzer.h"
#include "analysis/IntervalAnalysis.h"
#include "fusion/MinCutPartitioner.h"
#include "transform/Fuser.h"

#include <chrono>

namespace kf {

MaterializedPipeline compileLazy(const LazyPipeline &LP,
                                 const std::vector<LazyImage> &Outputs,
                                 const LazyGateOptions &Gate) {
  MaterializedPipeline MP;

  // -- Lower. Frontend-level issues (dangling handles, bad shapes, ...)
  // become diagnostics against the pipeline name.
  LazyLowering Lowered = LP.lower(Outputs);
  for (const LazyIssue &Issue : Lowered.Issues) {
    DiagLocation Loc;
    Loc.Unit = LP.name();
    Loc.Kernel = Issue.Where;
    MP.Diags.error(Issue.Code, Issue.Message, Loc);
  }
  if (!Lowered.recordOk())
    return MP;

  // -- Lint the *full* (unpruned, user-named) program so every recorded
  // op is validated and diagnostics read like the client's code. Dead
  // branches are the normal lazy idiom, so the dead-code warnings
  // (KF-P09 dead kernel, KF-P10 unused image) are dropped: pruning, not
  // the user, is responsible for them here.
  {
    DiagnosticEngine FullLint;
    lintProgram(*Lowered.Full, FullLint);
    for (const Diagnostic &Diag : FullLint.diagnostics())
      if (Diag.Code != "KF-P09" && Diag.Code != "KF-P10")
        MP.Diags.report(Diag);
    if (MP.Diags.errorCount() > 0)
      return MP;
  }

  // -- Defensive re-lint of the pruned canonical program the executor
  // will actually see. By construction it can only pass (its kernels are
  // a renamed subset plus identity exports); if it ever fails, reject --
  // the session compile path asserts on malformed IR.
  {
    DiagnosticEngine LiveLint;
    lintProgram(*Lowered.Live, LiveLint);
    if (LiveLint.errorCount() > 0) {
      for (const Diagnostic &Diag : LiveLint.diagnostics())
        MP.Diags.report(Diag);
      return MP;
    }
  }

  MP.Prog = std::move(Lowered.Live);
  MP.Inputs = std::move(Lowered.LiveInputs);
  MP.Outputs = std::move(Lowered.LiveOutputs);
  MP.StructuralHash = Lowered.StructuralHash;

  // -- Fuse: min-cut partitioning by default, singleton blocks when the
  // caller wants op-at-a-time execution (the bench's baseline).
  const Program &P = *MP.Prog;
  Partition Blocks = Gate.Fuse
                         ? runMinCutFusion(P, Gate.HW, Gate.Legality).Blocks
                         : makeSingletonPartition(P);
  MP.Fused = fuseProgram(P, Blocks, FusionStyle::Optimized);

  // -- The fused-program gate, mirroring `kfc --analyze`: legality
  // re-check, then per-launch footprint + bytecode validation and the
  // interval interpretation (each destination's proven result interval
  // seeds the load ranges of later launches; external inputs carry the
  // [0, 1] contract).
  checkFusedLegality(MP.Fused, Gate.HW, Gate.Legality, MP.Diags);
  std::vector<ImageInfo> Shapes;
  Shapes.reserve(P.numImages());
  for (ImageId Id = 0; Id != P.numImages(); ++Id)
    Shapes.push_back(P.image(Id));
  std::vector<InputRange> PoolRanges(P.numImages());
  for (const FusedKernel &FK : MP.Fused.Kernels) {
    StagedVmProgram SP = compileFusedKernel(MP.Fused, FK);
    uint16_t FirstRoot = 0;
    std::vector<std::pair<KernelId, uint16_t>> Dests;
    for (KernelId DestId : FK.Destinations) {
      uint16_t Root = 0;
      for (size_t I = 0; I != FK.Stages.size(); ++I)
        if (FK.Stages[I].Kernel == DestId)
          Root = static_cast<uint16_t>(I);
      if (Dests.empty())
        FirstRoot = Root;
      Dests.emplace_back(DestId, Root);
      int Halo = fusedLaunchHalo(SP, Root, P.image(P.kernel(DestId).Output));
      analyzeLaunch(P, FK, FK.Name, SP, Root, Halo, Shapes, MP.Diags);
    }
    DiagLocation Loc;
    Loc.Unit = LP.name();
    Loc.Kernel = FK.Name;
    IntervalAnalysisResult Intervals =
        analyzeStagedIntervals(SP, FirstRoot, PoolRanges, &MP.Diags, Loc);
    for (const auto &Dest : Dests) {
      const RegInterval &R = Intervals.Stages[Dest.second].Result;
      InputRange Written;
      Written.Lo = R.Lo;
      Written.Hi = R.Hi;
      Written.MayNaN = R.MayNaN;
      PoolRanges[P.kernel(Dest.first).Output] = Written;
    }
  }

  MP.Ok = !MP.Diags.failed(Gate.Werror);
  return MP;
}

LazyRunResult
runLazy(const MaterializedPipeline &MP,
        const std::vector<std::pair<std::string, const Image *>> &Inputs,
        const ExecutionOptions &Exec, PlanCache *Cache,
        ThreadPool *SharedPool) {
  LazyRunResult Result;
  if (!MP.Ok || !MP.Prog) {
    Result.Diags.error("KF-P00",
                       "cannot execute a pipeline the gate rejected");
    return Result;
  }

  // -- Input contract: every external input present, with the declared
  // shape. Violations are diagnosed, never forwarded to the session
  // (whose compiled launches index buffers by the declared shapes).
  for (const auto &Entry : MP.Inputs) {
    const ImageInfo &Info = MP.Prog->image(Entry.second);
    const Image *Provided = nullptr;
    for (const auto &Given : Inputs)
      if (Given.first == Entry.first)
        Provided = Given.second;
    if (Provided == nullptr) {
      Result.Diags.error("KF-P00", "missing external input '" + Entry.first +
                                       "'");
      continue;
    }
    if (Provided->width() != Info.Width || Provided->height() != Info.Height ||
        Provided->channels() != Info.Channels)
      Result.Diags.error(
          "KF-P00",
          "input '" + Entry.first + "' has shape " +
              std::to_string(Provided->width()) + "x" +
              std::to_string(Provided->height()) + "x" +
              std::to_string(Provided->channels()) + ", expected " +
              std::to_string(Info.Width) + "x" + std::to_string(Info.Height) +
              "x" + std::to_string(Info.Channels));
  }
  if (Result.Diags.errorCount() > 0)
    return Result;

  PipelineSession Session(MP.Fused, Exec, Cache, SharedPool);
  std::vector<Image> Frame = Session.acquireFrame();
  for (const auto &Entry : MP.Inputs)
    for (const auto &Given : Inputs)
      if (Given.first == Entry.first)
        Frame[Entry.second] = *Given.second;

  auto Start = std::chrono::steady_clock::now();
  Session.runFrame(Frame);
  auto End = std::chrono::steady_clock::now();

  Result.Outputs.reserve(MP.Outputs.size());
  for (ImageId Id : MP.Outputs)
    Result.Outputs.push_back(Frame[Id]);

  const SessionStats &Stats = Session.stats();
  Result.Stats.PlanWasHit = Stats.PlanHits > 0;
  Result.Stats.CompileMs = Stats.CompileMs;
  Result.Stats.ExecMs =
      std::chrono::duration<double, std::milli>(End - Start).count();
  Result.Stats.PlanKey = planKey(MP.Fused, Session.options());
  Result.Ok = true;
  return Result;
}

LazyRunResult materializeLazy(
    const LazyPipeline &LP, const std::vector<LazyImage> &Outputs,
    const std::vector<std::pair<std::string, const Image *>> &Inputs,
    const ExecutionOptions &Exec, const LazyGateOptions &Gate,
    PlanCache *Cache, ThreadPool *SharedPool) {
  MaterializedPipeline MP = compileLazy(LP, Outputs, Gate);
  if (!MP.Ok) {
    LazyRunResult Result;
    Result.Diags = MP.Diags;
    return Result;
  }
  return runLazy(MP, Inputs, Exec, Cache, SharedPool);
}

} // namespace kf
