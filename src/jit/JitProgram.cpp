//===- jit/JitProgram.cpp -------------------------------------------------===//

#include "jit/JitProgram.h"

#include "analysis/BytecodeValidator.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace kf;

namespace {

//===--------------------------------------------------------------------===//
// Precompiled op templates
//===--------------------------------------------------------------------===//
//
// Every template is instantiated twice: N = VmLaneWidth gives the full
// chain its compile-time trip count (the loops vectorize with no runtime
// bound checks), N = 0 gives the tail chain a runtime bound from the
// execution state. The loop bodies are copied verbatim from the span
// interpreter's evalRowImpl so every lane computes the identical float
// operation sequence -- bit-identity with span mode is by construction.

template <int N> inline int chunkWidth(const JitExec &E) {
  return N > 0 ? N : E.N;
}

template <int N> void opConst(const JitCell &C, JitExec &E) {
  const int W = chunkWidth<N>(E);
  float *D = E.Lanes + C.Dst;
  for (int I = 0; I != W; ++I)
    D[I] = C.Imm;
}

template <int N> void opCoordX(const JitCell &C, JitExec &E) {
  const int W = chunkWidth<N>(E);
  float *D = E.Lanes + C.Dst;
  const int Base = E.X0 + C.Ox; // Accumulated stage-call displacement.
  for (int I = 0; I != W; ++I)
    D[I] = static_cast<float>(Base + I);
}

template <int N> void opCoordY(const JitCell &C, JitExec &E) {
  const int W = chunkWidth<N>(E);
  float *D = E.Lanes + C.Dst;
  const float V = static_cast<float>(E.Y + C.Oy);
  for (int I = 0; I != W; ++I)
    D[I] = V;
}

/// Interior load. \p Mono specializes the single-channel (stride-1)
/// layout every grayscale stage hits; \p DynChannel distinguishes cells
/// whose channel was pinned at compile time from cells that read the
/// launch channel.
template <int N, bool Mono, bool DynChannel>
void opLoad(const JitCell &C, JitExec &E) {
  const int W = chunkWidth<N>(E);
  const Image &Img = (*E.Pool)[C.Image];
  assert(!Img.empty() && "reading an unmaterialized image");
  assert(!Mono || Img.channels() == 1);
  const int Ch = DynChannel ? E.Channel : C.Channel;
  const int Stride = Mono ? 1 : Img.channels();
  assert(E.Y + C.Oy >= 0 && E.Y + C.Oy < Img.height() &&
         E.X0 + C.Ox >= 0 && E.X0 + W - 1 + C.Ox < Img.width() &&
         "JIT evaluation outside the interior region");
  const float *Base =
      Img.data().data() +
      (static_cast<size_t>(E.Y + C.Oy) * Img.width() + (E.X0 + C.Ox)) *
          Stride +
      Ch;
  float *D = E.Lanes + C.Dst;
  for (int I = 0; I != W; ++I)
    D[I] = Base[static_cast<size_t>(I) * Stride];
}

template <int N, VmOp Op> void opAlu(const JitCell &C, JitExec &E) {
  const int W = chunkWidth<N>(E);
  float *D = E.Lanes + C.Dst;
  const float *A = E.Lanes + C.A;
  const float *B = E.Lanes + C.B;
  const float *S = E.Lanes + C.Sel;
  for (int I = 0; I != W; ++I) {
    if constexpr (Op == VmOp::Add)
      D[I] = A[I] + B[I];
    else if constexpr (Op == VmOp::Sub)
      D[I] = A[I] - B[I];
    else if constexpr (Op == VmOp::Mul)
      D[I] = A[I] * B[I];
    else if constexpr (Op == VmOp::Div)
      D[I] = A[I] / B[I];
    else if constexpr (Op == VmOp::Min)
      D[I] = std::min(A[I], B[I]);
    else if constexpr (Op == VmOp::Max)
      D[I] = std::max(A[I], B[I]);
    else if constexpr (Op == VmOp::Pow)
      D[I] = std::pow(A[I], B[I]);
    else if constexpr (Op == VmOp::CmpLT)
      D[I] = A[I] < B[I] ? 1.0f : 0.0f;
    else if constexpr (Op == VmOp::CmpGT)
      D[I] = A[I] > B[I] ? 1.0f : 0.0f;
    else if constexpr (Op == VmOp::Neg)
      D[I] = -A[I];
    else if constexpr (Op == VmOp::Abs)
      D[I] = std::abs(A[I]);
    else if constexpr (Op == VmOp::Sqrt)
      D[I] = std::sqrt(A[I]);
    else if constexpr (Op == VmOp::Exp)
      D[I] = std::exp(A[I]);
    else if constexpr (Op == VmOp::Log)
      D[I] = std::log(A[I]);
    else if constexpr (Op == VmOp::Floor)
      D[I] = std::floor(A[I]);
    else if constexpr (Op == VmOp::Select)
      D[I] = S[I] != 0.0f ? A[I] : B[I];
  }
}

/// The register-copy cell a flattened StageCall leaves behind: moves the
/// inlined callee's result lanes into the caller's destination register
/// (the assignment the interpreter performs when the recursive call
/// returns).
template <int N> void opCopy(const JitCell &C, JitExec &E) {
  const int W = chunkWidth<N>(E);
  float *D = E.Lanes + C.Dst;
  const float *A = E.Lanes + C.A;
  for (int I = 0; I != W; ++I)
    D[I] = A[I];
}

//===--------------------------------------------------------------------===//
// Flattening (stage-call inlining) and cell patching
//===--------------------------------------------------------------------===//

/// A width-agnostic cell: the patched operands plus the facts needed to
/// pick the op template (the Fn pointer differs between the full and the
/// tail chain).
struct CellSpec {
  VmOp Op = VmOp::Const;
  bool MonoLoad = false; ///< Load from a single-channel image.
  bool CopyCell = false; ///< StageCall's trailing register copy.
  JitCell Cell;          ///< Fn left null; patched per chain.
};

/// Flattens a validated staged program rooted at one stage: stage calls
/// inline the callee's stream with accumulated displacements, so the cell
/// sequence equals the instruction sequence the span interpreter executes
/// per chunk. The cell count therefore mirrors per-chunk runtime work,
/// not program size -- MaxCells is a safety cap far above any registry
/// pipeline, mirroring the validator's call-depth cap.
class Flattener {
public:
  static constexpr size_t MaxCells = 1u << 20;

  Flattener(const StagedVmProgram &SP,
            const std::vector<ImageInfo> &Shapes)
      : SP(SP), Shapes(Shapes) {}

  bool run(uint16_t Root) {
    emitStage(Root, /*Ox=*/0, /*Oy=*/0, /*Channel=*/-1);
    return !Overflow && !Cells.empty();
  }

  const std::vector<CellSpec> &cells() const { return Cells; }

  uint32_t resultOffset(uint16_t Root) const {
    return frameOffset(SP.Stages[Root], SP.Stages[Root].Code.ResultReg);
  }

private:
  /// Absolute lane-buffer float offset of \p Reg in \p Stage's frame.
  /// KF-B02/B07/B11 guarantee the result lies inside the disjoint slice
  /// [RegBase, RegBase + NumRegs) * VmLaneWidth of the shared buffer.
  static uint32_t frameOffset(const VmStage &Stage, uint16_t Reg) {
    return (Stage.RegBase + Reg) * static_cast<uint32_t>(VmLaneWidth);
  }

  void emitStage(uint16_t StageIdx, int Ox, int Oy, int Channel) {
    const VmStage &Stage = SP.Stages[StageIdx];
    for (const VmInst &Inst : Stage.Code.Insts) {
      if (Cells.size() >= MaxCells) {
        Overflow = true;
        return;
      }
      if (Inst.Op == VmOp::StageCall) {
        // Inline the callee at the accumulated displacement (KF-B05
        // guarantees Sel < StageIdx, so this recursion is finite), then
        // copy its result register into the caller's destination.
        int CalleeCh = Inst.Channel < 0 ? Channel : Inst.Channel;
        emitStage(Inst.Sel, Ox + Inst.Ox, Oy + Inst.Oy, CalleeCh);
        if (Overflow)
          return;
        CellSpec Copy;
        Copy.Op = VmOp::StageCall;
        Copy.CopyCell = true;
        Copy.Cell.Dst = frameOffset(Stage, Inst.Dst);
        Copy.Cell.A = resultOffset(Inst.Sel);
        Cells.push_back(Copy);
        continue;
      }
      CellSpec CS;
      CS.Op = Inst.Op;
      JitCell &C = CS.Cell;
      C.Dst = frameOffset(Stage, Inst.Dst);
      switch (Inst.Op) {
      case VmOp::Const:
        C.Imm = Inst.Imm;
        break;
      case VmOp::CoordX:
      case VmOp::CoordY:
        C.Ox = Ox;
        C.Oy = Oy;
        break;
      case VmOp::Load:
        C.Image = Stage.Inputs[Inst.InputIdx];
        C.Ox = Ox + Inst.Ox;
        C.Oy = Oy + Inst.Oy;
        C.Channel = static_cast<int16_t>(
            Inst.Channel < 0 ? Channel : Inst.Channel);
        CS.MonoLoad = Shapes[C.Image].Channels == 1;
        break;
      default: // ALU ops and Select.
        C.A = frameOffset(Stage, Inst.A);
        C.B = frameOffset(Stage, Inst.B);
        C.Sel = frameOffset(Stage, Inst.Sel);
        break;
      }
      Cells.push_back(CS);
    }
  }

  const StagedVmProgram &SP;
  const std::vector<ImageInfo> &Shapes;
  std::vector<CellSpec> Cells;
  bool Overflow = false;
};

/// Picks the op template for \p CS at chain width \p N (VmLaneWidth for
/// the full chain, 0 = runtime bound for the tail chain).
template <int N> JitOpFn selectFn(const CellSpec &CS) {
  if (CS.CopyCell)
    return opCopy<N>;
  switch (CS.Op) {
  case VmOp::Const:
    return opConst<N>;
  case VmOp::CoordX:
    return opCoordX<N>;
  case VmOp::CoordY:
    return opCoordY<N>;
  case VmOp::Load:
    if (CS.MonoLoad)
      return CS.Cell.Channel < 0 ? opLoad<N, true, true>
                                 : opLoad<N, true, false>;
    return CS.Cell.Channel < 0 ? opLoad<N, false, true>
                               : opLoad<N, false, false>;
  case VmOp::Add:
    return opAlu<N, VmOp::Add>;
  case VmOp::Sub:
    return opAlu<N, VmOp::Sub>;
  case VmOp::Mul:
    return opAlu<N, VmOp::Mul>;
  case VmOp::Div:
    return opAlu<N, VmOp::Div>;
  case VmOp::Min:
    return opAlu<N, VmOp::Min>;
  case VmOp::Max:
    return opAlu<N, VmOp::Max>;
  case VmOp::Pow:
    return opAlu<N, VmOp::Pow>;
  case VmOp::CmpLT:
    return opAlu<N, VmOp::CmpLT>;
  case VmOp::CmpGT:
    return opAlu<N, VmOp::CmpGT>;
  case VmOp::Neg:
    return opAlu<N, VmOp::Neg>;
  case VmOp::Abs:
    return opAlu<N, VmOp::Abs>;
  case VmOp::Sqrt:
    return opAlu<N, VmOp::Sqrt>;
  case VmOp::Exp:
    return opAlu<N, VmOp::Exp>;
  case VmOp::Log:
    return opAlu<N, VmOp::Log>;
  case VmOp::Floor:
    return opAlu<N, VmOp::Floor>;
  case VmOp::Select:
    return opAlu<N, VmOp::Select>;
  case VmOp::StageCall:
    break; // Flattened away; only the copy cell remains.
  }
  return nullptr;
}

} // namespace

std::shared_ptr<const JitProgram>
kf::compileJitProgram(const StagedVmProgram &SP, uint16_t Root,
                      const std::vector<ImageInfo> &PoolShapes) {
  // The validator is the gate: every invariant the flattening and the op
  // templates rely on (KF-B01..B11) is checked here, and any error means
  // no artifact -- the caller falls back to the interpreter, which is the
  // one allowed to report the diagnostics.
  DiagnosticEngine DE;
  validateStagedProgram(SP, Root, PoolShapes, DE);
  if (DE.errorCount() > 0)
    return nullptr;
  // KF-B09 (non-finite constant immediate) is only a warning to the
  // interpreter, which evaluates whatever the constant is. The patched
  // Const cells assume finite immediates like every other baked operand,
  // so the JIT treats it as a refusal too: the launch falls back to the
  // span interpreter, which has well-defined NaN/inf semantics.
  if (DE.hasCode("KF-B09"))
    return nullptr;

  Flattener Flat(SP, PoolShapes);
  if (!Flat.run(Root))
    return nullptr;

  auto JP = std::make_shared<JitProgram>();
  JP->NumRegs = SP.NumRegs;
  JP->ResultOffset = Flat.resultOffset(Root);
  JP->FlatInsts = Flat.cells().size();
  JP->Full.reserve(JP->FlatInsts + 1);
  JP->Tail.reserve(JP->FlatInsts + 1);
  for (const CellSpec &CS : Flat.cells()) {
    JitCell Full = CS.Cell;
    Full.Fn = selectFn<VmLaneWidth>(CS);
    JitCell Tail = CS.Cell;
    Tail.Fn = selectFn<0>(CS);
    if (!Full.Fn || !Tail.Fn)
      return nullptr; // Unpatchable op: refuse rather than mis-execute.
    JP->Full.push_back(Full);
    JP->Tail.push_back(Tail);
  }
  JP->Full.push_back(JitCell{}); // Null-Fn chain terminators.
  JP->Tail.push_back(JitCell{});
  return JP;
}

void kf::runJitSpan(const JitProgram &JP, const std::vector<Image> &Pool,
                    int Y, int X0, int X1, int Channel, float *LaneRegs,
                    float *Out, int OutStride) {
  JitExec E;
  E.Lanes = LaneRegs;
  E.Pool = &Pool;
  E.Y = Y;
  E.Channel = Channel;
  // Chunking mirrors runStagedVmSpan: full lanes run the chain whose op
  // loops carry the compile-time VmLaneWidth bound, the final sub-lane
  // chunk runs the runtime-bound tail chain.
  for (int C0 = X0; C0 < X1; C0 += VmLaneWidth) {
    const int C1 = std::min(X1, C0 + VmLaneWidth);
    E.X0 = C0;
    E.N = C1 - C0;
    const JitCell *Cell =
        (E.N == VmLaneWidth ? JP.Full : JP.Tail).data();
    for (; Cell->Fn; ++Cell)
      Cell->Fn(*Cell, E);
    const float *Result = LaneRegs + JP.ResultOffset;
    float *O = Out + static_cast<size_t>(C0 - X0) * OutStride;
    for (int I = 0; I != E.N; ++I)
      O[static_cast<size_t>(I) * OutStride] = Result[I];
  }
}
