//===- jit/JitProgram.h - Copy-and-patch JIT of fused bytecode --*- C++ -*-===//
///
/// \file
/// The JIT execution backend (VmMode::Jit): a validated staged VM program
/// is compiled once per plan into a flat chain of *cells*, each pairing a
/// precompiled, width-specialized op function with its patched operands
/// (absolute lane-buffer offsets, baked stage-call displacements, image
/// ids). Executing a row span then walks the chain and tail-calls through
/// plain function pointers -- a portable copy-and-patch / direct-threaded
/// realization that removes the interpreter's switch-per-instruction-per-
/// chunk from the interior loop. Two chains are materialized per program:
/// a *full* chain whose op templates carry the compile-time loop bound
/// VmLaneWidth (the autovectorized steady state) and a *tail* chain with a
/// runtime bound for the final sub-lane chunk.
///
/// Stage calls are flattened at compile time: each StageCall site inlines
/// the callee's instruction stream with the accumulated (Ox, Oy)
/// displacement and pinned channel baked into its coordinate and load
/// cells, followed by a register-copy cell into the caller's destination.
/// That reproduces, cell for cell, the operation sequence the span
/// interpreter executes recursively -- same float operations on the same
/// values in the same order -- so JIT results are bit-identical to span
/// mode (the differential suites in tests/test_jit.cpp pin this down).
///
/// The bytecode validator's invariants (KF-B01..B11, see
/// analysis/BytecodeValidator.h) are the contract this codegen trusts:
/// in-frame register indices, frames inside the shared scratch and
/// pairwise disjoint, strictly-backward stage calls, bounded call depth,
/// in-range load inputs. compileJitProgram therefore refuses -- returns
/// nullptr -- any program the validator rejects; corrupted bytecode never
/// reaches cell selection, let alone threaded execution.
///
//===----------------------------------------------------------------------===//

#ifndef KF_JIT_JITPROGRAM_H
#define KF_JIT_JITPROGRAM_H

#include "image/Image.h"
#include "ir/ExprVM.h"
#include "ir/Program.h"

#include <cstdint>
#include <memory>
#include <vector>

namespace kf {

struct JitCell;

/// Per-chunk execution state threaded through the cell chain. Lanes is
/// the shared lane buffer (NumRegs * VmLaneWidth floats, the same scratch
/// span mode uses); N is the chunk width (== VmLaneWidth on the full
/// chain, < VmLaneWidth on the tail chain).
struct JitExec {
  float *Lanes = nullptr;
  const std::vector<Image> *Pool = nullptr;
  int X0 = 0;
  int Y = 0;
  int Channel = 0;
  int N = 0;
};

/// A patched op function: performs one flattened instruction over the
/// chunk described by \p E, reading its operands from \p Cell.
using JitOpFn = void (*)(const JitCell &Cell, JitExec &E);

/// One patched cell: a precompiled op template plus its operands. Dst/A/
/// B/Sel are absolute float offsets into the lane buffer (frame base and
/// register index collapsed at compile time); Ox/Oy carry the accumulated
/// stage-call displacement for coordinate and load cells; Channel is the
/// pinned channel (-1 = the launch channel at run time).
struct JitCell {
  JitOpFn Fn = nullptr;
  uint32_t Dst = 0;
  uint32_t A = 0;
  uint32_t B = 0;
  uint32_t Sel = 0;
  float Imm = 0.0f;
  ImageId Image = 0;
  int Ox = 0;
  int Oy = 0;
  int16_t Channel = -1;
};

/// A compiled launch artifact: the two cell chains (null-Fn terminated)
/// plus the layout facts the executor needs. Compiled once per plan
/// (sim/Session caches it in the PlanCache next to the bytecode) and
/// shared read-only across worker threads.
struct JitProgram {
  std::vector<JitCell> Full; ///< Chain specialized for N == VmLaneWidth.
  std::vector<JitCell> Tail; ///< Chain with the runtime chunk bound.
  uint32_t ResultOffset = 0; ///< Lane offset of the root result register.
  unsigned NumRegs = 0;      ///< Lane buffer = NumRegs * VmLaneWidth floats.
  size_t FlatInsts = 0;      ///< Flattened instruction (cell) count.
};

/// Compiles \p SP rooted at \p Root into a JIT program. Runs the bytecode
/// validator first and returns nullptr when it reports any error (the
/// validator's invariants are the contract the flattening trusts), or
/// when flattening would exceed the cell-count safety cap. \p PoolShapes
/// are the plan's image shapes, used both by the validator and to
/// specialize load cells on the input's channel stride.
std::shared_ptr<const JitProgram>
compileJitProgram(const StagedVmProgram &SP, uint16_t Root,
                  const std::vector<ImageInfo> &PoolShapes);

/// Executes \p JP over interior pixels [X0, X1) of row \p Y for
/// \p Channel, writing result i to Out[i * OutStride]. The span is
/// chunked into lanes of at most VmLaneWidth pixels exactly like
/// runStagedVmSpan; \p LaneRegs must hold JP.NumRegs * VmLaneWidth
/// floats. Interior-only (direct loads), bit-identical to span mode.
void runJitSpan(const JitProgram &JP, const std::vector<Image> &Pool,
                int Y, int X0, int X1, int Channel, float *LaneRegs,
                float *Out, int OutStride = 1);

} // namespace kf

#endif // KF_JIT_JITPROGRAM_H
