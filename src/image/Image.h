//===- image/Image.h - 2-D multi-channel float image buffers ---*- C++ -*-===//
///
/// \file
/// The image buffer the DSL kernels operate on. All pixel data is float;
/// gray images use one channel and the RGB pipeline (the Night filter) uses
/// three, matching the evaluation setup of the paper (2048x2048 gray for
/// five applications, 1920x1200 RGB for Night).
///
//===----------------------------------------------------------------------===//

#ifndef KF_IMAGE_IMAGE_H
#define KF_IMAGE_IMAGE_H

#include <cassert>
#include <cstddef>
#include <vector>

namespace kf {

/// Row-major, channel-interleaved float image.
class Image {
public:
  Image() = default;

  Image(int Width, int Height, int Channels = 1, float Fill = 0.0f)
      : W(Width), H(Height), C(Channels),
        Data(static_cast<size_t>(Width) * Height * Channels, Fill) {
    assert(Width > 0 && Height > 0 && Channels > 0 && "invalid image shape");
  }

  int width() const { return W; }
  int height() const { return H; }
  int channels() const { return C; }
  bool empty() const { return Data.empty(); }

  /// Number of pixels (the iteration-space size IS(i) of the benefit model).
  long long iterationSpace() const {
    return static_cast<long long>(W) * H;
  }

  /// Total payload in bytes (4 bytes per channel sample).
  long long sizeInBytes() const {
    return static_cast<long long>(Data.size()) * 4;
  }

  float at(int X, int Y, int Channel = 0) const {
    assert(inBounds(X, Y) && Channel >= 0 && Channel < C &&
           "pixel access out of bounds");
    return Data[index(X, Y, Channel)];
  }

  float &at(int X, int Y, int Channel = 0) {
    assert(inBounds(X, Y) && Channel >= 0 && Channel < C &&
           "pixel access out of bounds");
    return Data[index(X, Y, Channel)];
  }

  bool inBounds(int X, int Y) const {
    return X >= 0 && X < W && Y >= 0 && Y < H;
  }

  /// True when both images have identical shape.
  bool sameShape(const Image &Other) const {
    return W == Other.W && H == Other.H && C == Other.C;
  }

  const std::vector<float> &data() const { return Data; }
  std::vector<float> &data() { return Data; }

private:
  size_t index(int X, int Y, int Channel) const {
    return (static_cast<size_t>(Y) * W + X) * C + Channel;
  }

  int W = 0;
  int H = 0;
  int C = 0;
  std::vector<float> Data;
};

} // namespace kf

#endif // KF_IMAGE_IMAGE_H
