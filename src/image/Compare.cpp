//===- image/Compare.cpp ---------------------------------------------------===//

#include "image/Compare.h"

#include <cassert>
#include <cmath>

using namespace kf;

double kf::maxAbsDifference(const Image &A, const Image &B) {
  assert(A.sameShape(B) && "comparing images of different shapes");
  double Max = 0.0;
  for (size_t I = 0, E = A.data().size(); I != E; ++I)
    Max = std::max(Max,
                   std::abs(static_cast<double>(A.data()[I]) - B.data()[I]));
  return Max;
}

long long kf::countDifferingSamples(const Image &A, const Image &B,
                                    double Tolerance) {
  assert(A.sameShape(B) && "comparing images of different shapes");
  long long Count = 0;
  for (size_t I = 0, E = A.data().size(); I != E; ++I)
    if (std::abs(static_cast<double>(A.data()[I]) - B.data()[I]) > Tolerance)
      ++Count;
  return Count;
}

bool kf::imagesAlmostEqual(const Image &A, const Image &B, double Tolerance) {
  return maxAbsDifference(A, B) <= Tolerance;
}

double kf::maxAbsDifferenceInHalo(const Image &A, const Image &B, int Halo) {
  assert(A.sameShape(B) && "comparing images of different shapes");
  double Max = 0.0;
  for (int Y = 0; Y != A.height(); ++Y)
    for (int X = 0; X != A.width(); ++X) {
      bool Interior = X >= Halo && X < A.width() - Halo && Y >= Halo &&
                      Y < A.height() - Halo;
      if (Interior)
        continue;
      for (int Ch = 0; Ch != A.channels(); ++Ch)
        Max = std::max(Max, std::abs(static_cast<double>(A.at(X, Y, Ch)) -
                                     B.at(X, Y, Ch)));
    }
  return Max;
}

double kf::maxAbsDifferenceInInterior(const Image &A, const Image &B,
                                      int Halo) {
  assert(A.sameShape(B) && "comparing images of different shapes");
  double Max = 0.0;
  for (int Y = Halo; Y < A.height() - Halo; ++Y)
    for (int X = Halo; X < A.width() - Halo; ++X)
      for (int Ch = 0; Ch != A.channels(); ++Ch)
        Max = std::max(Max, std::abs(static_cast<double>(A.at(X, Y, Ch)) -
                                     B.at(X, Y, Ch)));
  return Max;
}
