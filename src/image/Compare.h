//===- image/Compare.h - Image comparison utilities -------------*- C++ -*-===//
///
/// \file
/// Comparison helpers used by the correctness tests: fused pipelines must
/// produce outputs identical (up to floating-point reassociation noise) to
/// their unfused references, including the halo region (Section IV-B).
///
//===----------------------------------------------------------------------===//

#ifndef KF_IMAGE_COMPARE_H
#define KF_IMAGE_COMPARE_H

#include "image/Image.h"

namespace kf {

/// Largest absolute per-sample difference; images must have equal shape.
double maxAbsDifference(const Image &A, const Image &B);

/// Number of samples differing by more than \p Tolerance.
long long countDifferingSamples(const Image &A, const Image &B,
                                double Tolerance);

/// True if every sample differs by at most \p Tolerance.
bool imagesAlmostEqual(const Image &A, const Image &B,
                       double Tolerance = 1e-4);

/// Largest absolute difference restricted to the halo region of width
/// \p Halo (the outermost Halo rows/columns). Useful to localize border
/// handling bugs: a naive local-to-local fusion is exact in the interior
/// but wrong exactly here.
double maxAbsDifferenceInHalo(const Image &A, const Image &B, int Halo);

/// Largest absolute difference restricted to the interior region (pixels at
/// distance >= \p Halo from every border).
double maxAbsDifferenceInInterior(const Image &A, const Image &B, int Halo);

} // namespace kf

#endif // KF_IMAGE_COMPARE_H
