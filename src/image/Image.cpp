//===- image/Image.cpp -----------------------------------------------------===//
// Image is header-only; this file anchors the translation unit.

#include "image/Image.h"
