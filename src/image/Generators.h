//===- image/Generators.h - Synthetic test images ---------------*- C++ -*-===//
///
/// \file
/// Synthetic image generators. The paper's artifact generates random images
/// ("The provided binaries generate random images of size 2,048 by 2,048
/// pixels, hence no additional data is required"); we do the same, plus a
/// few structured patterns that make border-handling bugs visible.
///
//===----------------------------------------------------------------------===//

#ifndef KF_IMAGE_GENERATORS_H
#define KF_IMAGE_GENERATORS_H

#include "image/Image.h"
#include "support/Random.h"

namespace kf {

/// Uniform random samples in [Lo, Hi).
Image makeRandomImage(int Width, int Height, int Channels, Rng &Generator,
                      float Lo = 0.0f, float Hi = 1.0f);

/// Diagonal gradient: pixel (x, y) = (x + 2*y) scaled into [0, 1].
Image makeGradientImage(int Width, int Height, int Channels = 1);

/// All-zero image with a single bright pixel in the middle; convolving it
/// reveals the mask footprint, which makes halo bugs obvious.
Image makeImpulseImage(int Width, int Height, float Peak = 1.0f);

/// Alternating Block x Block checkerboard of values Lo / Hi.
Image makeCheckerboardImage(int Width, int Height, int Block, float Lo,
                            float Hi);

/// The 5x5 integer example matrix from Figure 4 of the paper (used by the
/// border-fusion experiment; values are exactly the figure's).
Image makeFigure4Matrix();

} // namespace kf

#endif // KF_IMAGE_GENERATORS_H
