//===- image/Border.cpp ----------------------------------------------------===//

#include "image/Border.h"

#include "support/Error.h"

using namespace kf;

const char *kf::borderModeName(BorderMode Mode) {
  switch (Mode) {
  case BorderMode::Clamp:
    return "clamp";
  case BorderMode::Mirror:
    return "mirror";
  case BorderMode::Repeat:
    return "repeat";
  case BorderMode::Constant:
    return "constant";
  }
  KF_UNREACHABLE("unknown border mode");
}

int kf::exchangeIndex(int Index, int Size, BorderMode Mode) {
  if (Index >= 0 && Index < Size)
    return Index;
  switch (Mode) {
  case BorderMode::Clamp:
    return Index < 0 ? 0 : Size - 1;
  case BorderMode::Mirror: {
    // Reflection with the edge pixel included: -1 -> 0, -2 -> 1, Size ->
    // Size-1. The period of the reflected pattern is 2*Size.
    int Period = 2 * Size;
    int M = Index % Period;
    if (M < 0)
      M += Period;
    return M < Size ? M : Period - 1 - M;
  }
  case BorderMode::Repeat: {
    int M = Index % Size;
    return M < 0 ? M + Size : M;
  }
  case BorderMode::Constant:
    return -1;
  }
  KF_UNREACHABLE("unknown border mode");
}

float kf::sampleWithBorder(const Image &Source, int X, int Y, int Channel,
                           BorderMode Mode, float ConstantValue) {
  int EX = exchangeIndex(X, Source.width(), Mode);
  int EY = exchangeIndex(Y, Source.height(), Mode);
  if (EX < 0 || EY < 0)
    return ConstantValue;
  return Source.at(EX, EY, Channel);
}
