//===- image/ImageIO.cpp ---------------------------------------------------===//

#include "image/ImageIO.h"

#include <algorithm>
#include <cerrno>
#include <climits>
#include <cstdio>
#include <cstdlib>
#include <memory>

using namespace kf;

namespace {
/// RAII wrapper over std::FILE so early exits stay leak-free.
struct FileCloser {
  void operator()(std::FILE *File) const {
    if (File)
      std::fclose(File);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;
} // namespace

static unsigned char toByte(float Sample) {
  float Scaled = Sample * 255.0f;
  Scaled = std::clamp(Scaled, 0.0f, 255.0f);
  return static_cast<unsigned char>(Scaled + 0.5f);
}

bool kf::writePnm(const Image &Source, const std::string &Path) {
  if (Source.channels() != 1 && Source.channels() != 3)
    return false;
  FilePtr File(std::fopen(Path.c_str(), "wb"));
  if (!File)
    return false;
  const char *Magic = Source.channels() == 1 ? "P5" : "P6";
  std::fprintf(File.get(), "%s\n%d %d\n255\n", Magic, Source.width(),
               Source.height());
  std::vector<unsigned char> Row(
      static_cast<size_t>(Source.width()) * Source.channels());
  for (int Y = 0; Y != Source.height(); ++Y) {
    size_t Pos = 0;
    for (int X = 0; X != Source.width(); ++X)
      for (int Ch = 0; Ch != Source.channels(); ++Ch)
        Row[Pos++] = toByte(Source.at(X, Y, Ch));
    if (std::fwrite(Row.data(), 1, Row.size(), File.get()) != Row.size())
      return false;
  }
  return true;
}

/// Parses a PNM header field: a decimal integer in [Min, Max] with no
/// trailing garbage. std::atoi would be undefined on overflow and accept
/// "123abc"; checked strtol rejects both.
static bool parseHeaderInt(const std::string &Text, long Min, long Max,
                           int &Out) {
  if (Text.empty())
    return false;
  char *End = nullptr;
  errno = 0;
  long Value = std::strtol(Text.c_str(), &End, 10);
  if (End == Text.c_str() || *End != '\0' || errno == ERANGE ||
      Value < Min || Value > Max)
    return false;
  Out = static_cast<int>(Value);
  return true;
}

/// Reads one whitespace-delimited ASCII token, skipping '#' comments.
static bool readToken(std::FILE *File, std::string &Token) {
  Token.clear();
  int Ch = std::fgetc(File);
  while (Ch != EOF) {
    if (Ch == '#') {
      while (Ch != EOF && Ch != '\n')
        Ch = std::fgetc(File);
    } else if (std::isspace(Ch)) {
      if (!Token.empty())
        return true;
    } else {
      Token.push_back(static_cast<char>(Ch));
    }
    Ch = std::fgetc(File);
  }
  return !Token.empty();
}

std::optional<Image> kf::readPnm(const std::string &Path) {
  FilePtr File(std::fopen(Path.c_str(), "rb"));
  if (!File)
    return std::nullopt;
  std::string Magic, WidthText, HeightText, MaxText;
  if (!readToken(File.get(), Magic) || !readToken(File.get(), WidthText) ||
      !readToken(File.get(), HeightText) || !readToken(File.get(), MaxText))
    return std::nullopt;
  int Channels = 0;
  if (Magic == "P5")
    Channels = 1;
  else if (Magic == "P6")
    Channels = 3;
  else
    return std::nullopt;
  int Width = 0, Height = 0, MaxValue = 0;
  // 8-bit PNM allows any maxval in [1, 255]; samples are scaled by the
  // declared maxval so e.g. a maxval-15 file reads as full-range floats.
  if (!parseHeaderInt(WidthText, 1, INT_MAX, Width) ||
      !parseHeaderInt(HeightText, 1, INT_MAX, Height) ||
      !parseHeaderInt(MaxText, 1, 255, MaxValue))
    return std::nullopt;

  const float Scale = 1.0f / static_cast<float>(MaxValue);
  Image Result(Width, Height, Channels);
  std::vector<unsigned char> Row(static_cast<size_t>(Width) * Channels);
  for (int Y = 0; Y != Height; ++Y) {
    if (std::fread(Row.data(), 1, Row.size(), File.get()) != Row.size())
      return std::nullopt;
    size_t Pos = 0;
    for (int X = 0; X != Width; ++X)
      for (int Ch = 0; Ch != Channels; ++Ch)
        Result.at(X, Y, Ch) = static_cast<float>(Row[Pos++]) * Scale;
  }
  return Result;
}
