//===- image/Border.h - Border handling modes -------------------*- C++ -*-===//
///
/// \file
/// Border handling for local (stencil) operators. The paper's index-exchange
/// method (Section IV-B) uses these modes: whenever a window access falls in
/// the exterior region of an image, the access index is exchanged according
/// to the border mode before the read happens. Clamp is the mode used in the
/// paper's running example (Figure 4); mirror and repeat are the additional
/// modes it mentions; constant completes the usual Hipacc set.
///
//===----------------------------------------------------------------------===//

#ifndef KF_IMAGE_BORDER_H
#define KF_IMAGE_BORDER_H

#include "image/Image.h"

namespace kf {

/// How out-of-border accesses are resolved.
enum class BorderMode {
  Clamp,    ///< Coordinates clamp to the nearest edge pixel.
  Mirror,   ///< Coordinates reflect at the border (edge pixel included).
  Repeat,   ///< Coordinates wrap around (periodic image).
  Constant, ///< Out-of-border reads return a fixed value.
};

/// Printable name of \p Mode ("clamp", "mirror", ...).
const char *borderModeName(BorderMode Mode);

/// Exchanges a possibly out-of-range coordinate \p Index on an axis of
/// extent \p Size according to \p Mode. For Constant, returns -1 to signal
/// that the constant value must be used instead of a read. \p Size >= 1.
int exchangeIndex(int Index, int Size, BorderMode Mode);

/// Reads pixel (X, Y, Channel) of \p Source with border handling: exterior
/// coordinates are exchanged per \p Mode; Constant returns \p ConstantValue.
float sampleWithBorder(const Image &Source, int X, int Y, int Channel,
                       BorderMode Mode, float ConstantValue = 0.0f);

} // namespace kf

#endif // KF_IMAGE_BORDER_H
