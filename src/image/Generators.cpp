//===- image/Generators.cpp ------------------------------------------------===//

#include "image/Generators.h"

using namespace kf;

Image kf::makeRandomImage(int Width, int Height, int Channels, Rng &Generator,
                          float Lo, float Hi) {
  Image Result(Width, Height, Channels);
  for (float &Sample : Result.data())
    Sample = static_cast<float>(Generator.uniform(Lo, Hi));
  return Result;
}

Image kf::makeGradientImage(int Width, int Height, int Channels) {
  Image Result(Width, Height, Channels);
  float Scale = 1.0f / static_cast<float>(Width + 2 * Height);
  for (int Y = 0; Y != Height; ++Y)
    for (int X = 0; X != Width; ++X)
      for (int Ch = 0; Ch != Channels; ++Ch)
        Result.at(X, Y, Ch) = static_cast<float>(X + 2 * Y) * Scale;
  return Result;
}

Image kf::makeImpulseImage(int Width, int Height, float Peak) {
  Image Result(Width, Height, 1);
  Result.at(Width / 2, Height / 2) = Peak;
  return Result;
}

Image kf::makeCheckerboardImage(int Width, int Height, int Block, float Lo,
                                float Hi) {
  Image Result(Width, Height, 1);
  for (int Y = 0; Y != Height; ++Y)
    for (int X = 0; X != Width; ++X) {
      bool Odd = ((X / Block) + (Y / Block)) % 2 != 0;
      Result.at(X, Y) = Odd ? Hi : Lo;
    }
  return Result;
}

Image kf::makeFigure4Matrix() {
  // Rows exactly as printed in Figure 4a of the paper.
  const float Values[5][5] = {{1, 3, 7, 7, 6},
                              {3, 7, 9, 6, 8},
                              {5, 4, 3, 2, 1},
                              {4, 1, 2, 1, 2},
                              {5, 2, 2, 4, 2}};
  Image Result(5, 5, 1);
  for (int Y = 0; Y != 5; ++Y)
    for (int X = 0; X != 5; ++X)
      Result.at(X, Y) = Values[Y][X];
  return Result;
}
