//===- image/ImageIO.h - PGM/PPM image input and output ---------*- C++ -*-===//
///
/// \file
/// Minimal binary PGM (P5, gray) and PPM (P6, RGB) reader/writer so the
/// examples can emit inspectable results. Float samples are scaled from
/// [0, 1] to 8-bit with clamping.
///
//===----------------------------------------------------------------------===//

#ifndef KF_IMAGE_IMAGEIO_H
#define KF_IMAGE_IMAGEIO_H

#include "image/Image.h"

#include <optional>
#include <string>

namespace kf {

/// Writes \p Source as binary PGM (1 channel) or PPM (3 channels). Returns
/// false on I/O failure or unsupported channel count.
bool writePnm(const Image &Source, const std::string &Path);

/// Reads a binary 8-bit PGM/PPM file (any declared maxval in [1, 255];
/// samples scale by it back into [0, 1]). Header fields are parsed with
/// full range and trailing-garbage checking; returns std::nullopt on any
/// parse or I/O failure.
std::optional<Image> readPnm(const std::string &Path);

} // namespace kf

#endif // KF_IMAGE_IMAGEIO_H
