//===- examples/harris_pipeline.cpp - Harris corner detection end-to-end --------===//
//
// The paper's running example as an application: builds the nine-kernel
// Harris corner detector, fuses it three ways (none / basic / optimized),
// runs corner detection on a synthetic checkerboard scene, writes the
// response as a PGM image, and reports the simulated performance of all
// three variants on the three GPUs.
//
// Run:  ./harris_pipeline [--size N] [--out response.pgm]
//
//===----------------------------------------------------------------------===//

#include "fusion/BasicFusion.h"
#include "fusion/MinCutPartitioner.h"
#include "image/Compare.h"
#include "image/Generators.h"
#include "image/ImageIO.h"
#include "pipelines/Pipelines.h"
#include "sim/Executor.h"
#include "sim/Runner.h"
#include "support/CommandLine.h"
#include "transform/Fuser.h"

#include <cstdio>

using namespace kf;

int main(int Argc, char **Argv) {
  CommandLine Cl(Argc, Argv);
  int Size = static_cast<int>(Cl.getIntOption("size", 256));
  std::string OutPath = Cl.getOption("out", "");

  Program P = makeHarris(Size, Size);
  HardwareModel HW;

  // The three implementations of the evaluation.
  FusedProgram Baseline = unfusedProgram(P);
  BasicFusionResult Basic = runBasicFusion(P, HW);
  FusedProgram BasicFused =
      fuseProgram(P, Basic.Blocks, FusionStyle::Basic);
  MinCutFusionResult Optimized = runMinCutFusion(P, HW);
  FusedProgram OptFused =
      fuseProgram(P, Optimized.Blocks, FusionStyle::Optimized);

  std::printf("Harris pipeline (%dx%d):\n", Size, Size);
  std::printf("  baseline : %u launches\n", Baseline.numLaunches());
  std::printf("  basic    : %u launches  %s\n", BasicFused.numLaunches(),
              partitionToString(P, Basic.Blocks).c_str());
  std::printf("  optimized: %u launches  %s\n", OptFused.numLaunches(),
              partitionToString(P, Optimized.Blocks).c_str());

  // Run corner detection on a checkerboard (dense corners).
  std::vector<Image> Reference = makeImagePool(P);
  Reference[0] = makeCheckerboardImage(Size, Size, Size / 8, 0.1f, 0.9f);
  runUnfused(P, Reference);

  std::vector<Image> Pool = makeImagePool(P);
  Pool[0] = Reference[0];
  runFused(OptFused, Pool);
  ImageId Out = P.terminalOutputs().front();
  std::printf("fused == baseline: max abs diff %g\n",
              maxAbsDifference(Pool[Out], Reference[Out]));

  // Count strong corner responses.
  long long StrongCorners = 0;
  for (float V : Pool[Out].data())
    if (V > 1e-4f)
      ++StrongCorners;
  std::printf("pixels with positive corner response: %lld\n",
              StrongCorners);

  if (!OutPath.empty()) {
    // Normalize the response into [0, 1] for the image writer.
    Image Vis(Size, Size, 1);
    float MaxVal = 1e-9f;
    for (float V : Pool[Out].data())
      MaxVal = std::max(MaxVal, std::abs(V));
    for (int Y = 0; Y != Size; ++Y)
      for (int X = 0; X != Size; ++X)
        Vis.at(X, Y) = std::abs(Pool[Out].at(X, Y)) / MaxVal;
    if (writePnm(Vis, OutPath))
      std::printf("wrote corner response to %s\n", OutPath.c_str());
    else
      std::printf("failed to write %s\n", OutPath.c_str());
  }

  // Simulated performance comparison.
  CostModelParams Params;
  std::printf("\nsimulated times (ms):\n");
  std::printf("%-8s %10s %10s %10s %8s\n", "device", "baseline", "basic",
              "optimized", "speedup");
  for (const DeviceSpec &Device : DeviceSpec::paperDevices()) {
    double TBase = estimateProgramTimeMs(accountFusedProgram(Baseline),
                                         Device, Params);
    double TBasic = estimateProgramTimeMs(accountFusedProgram(BasicFused),
                                          Device, Params);
    double TOpt = estimateProgramTimeMs(accountFusedProgram(OptFused),
                                        Device, Params);
    std::printf("%-8s %10.3f %10.3f %10.3f %8.3f\n", Device.Name.c_str(),
                TBase, TBasic, TOpt, TBase / TOpt);
  }
  return 0;
}
