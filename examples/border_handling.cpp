//===- examples/border_handling.cpp - Why index exchange matters ----------------===//
//
// Demonstrates the border-handling problem of local-to-local fusion
// (Section IV of the paper) on a user-visible workload: a two-stage blur
// chain. Shows the halo region where naive fusion silently corrupts the
// output, per border mode, and how the halo grows with the number of
// fused local kernels.
//
// Run:  ./border_handling [--width N] [--height N]
//
//===----------------------------------------------------------------------===//

#include "image/Compare.h"
#include "image/Generators.h"
#include "pipelines/Pipelines.h"
#include "sim/Executor.h"
#include "support/CommandLine.h"
#include "support/TablePrinter.h"
#include "support/StringUtils.h"
#include "transform/Fuser.h"

#include <cstdio>

using namespace kf;

static Partition wholePartition(const Program &P) {
  Partition S;
  PartitionBlock Block;
  for (KernelId Id = 0; Id != P.numKernels(); ++Id)
    Block.Kernels.push_back(Id);
  S.Blocks.push_back(std::move(Block));
  return S;
}

int main(int Argc, char **Argv) {
  CommandLine Cl(Argc, Argv);
  int Width = static_cast<int>(Cl.getIntOption("width", 64));
  int Height = static_cast<int>(Cl.getIntOption("height", 48));

  std::printf("Fusing two 3x3 blurs on a %dx%d image.\n\n", Width, Height);
  std::printf("The fused kernel needs a 5x5 window (Eq. 9); its halo "
              "region is the outer 2 pixels.\nWithout index exchange the "
              "halo is computed from wrongly-padded intermediates:\n\n");

  TablePrinter Table({"border mode", "exchange: max err", "naive: max err",
                      "naive: wrong samples", "wrong samples in halo"});
  for (BorderMode Mode : {BorderMode::Clamp, BorderMode::Mirror,
                          BorderMode::Repeat, BorderMode::Constant}) {
    Program P = makeBlurChain(Width, Height, Mode);
    Rng Gen(7);
    Image Input = makeRandomImage(Width, Height, 1, Gen);

    std::vector<Image> Reference = makeImagePool(P);
    Reference[0] = Input;
    runUnfused(P, Reference);

    FusedProgram FP =
        fuseProgram(P, wholePartition(P), FusionStyle::Optimized);

    std::vector<Image> Good = makeImagePool(P);
    Good[0] = Input;
    runFused(FP, Good);

    std::vector<Image> Bad = makeImagePool(P);
    Bad[0] = Input;
    ExecutionOptions Naive;
    Naive.UseIndexExchange = false;
    runFused(FP, Bad, Naive);

    long long Wrong = countDifferingSamples(Bad[2], Reference[2], 1e-7);
    double WrongInterior =
        maxAbsDifferenceInInterior(Bad[2], Reference[2], 2);
    long long HaloSamples =
        static_cast<long long>(Width) * Height -
        static_cast<long long>(Width - 4) * (Height - 4);
    Table.addRow(
        {borderModeName(Mode),
         formatDouble(maxAbsDifference(Good[2], Reference[2]), 7),
         formatDouble(maxAbsDifference(Bad[2], Reference[2]), 7),
         std::to_string(Wrong) + "/" + std::to_string(HaloSamples),
         WrongInterior == 0.0 ? "all" : "NOT all"});
  }
  std::fputs(Table.render().c_str(), stdout);

  std::printf("\nHalo growth: the halo grows with every fused local "
              "kernel (\"quadratically with the\nnumber of local kernels "
              "being fused\" in area):\n\n");
  TablePrinter Growth({"fused 3x3 kernels", "fused window", "halo width",
                       "halo share of 2048x2048"});
  for (int Chain = 1; Chain <= 5; ++Chain) {
    int WindowWidth = 3 + 2 * (Chain - 1);
    int Halo = WindowWidth / 2;
    double Total = 2048.0 * 2048.0;
    double Interior = (2048.0 - 2 * Halo) * (2048.0 - 2 * Halo);
    Growth.addRow({std::to_string(Chain),
                   std::to_string(WindowWidth) + "x" +
                       std::to_string(WindowWidth),
                   std::to_string(Halo),
                   formatDouble(100.0 * (Total - Interior) / Total, 2) +
                       "%"});
  }
  std::fputs(Growth.render().c_str(), stdout);
  std::printf("\nCorrect border handling is \"a crucial ingredient for "
              "automating image processing\ncode generation in a "
              "compiler\" -- the exchange column is exactly zero for "
              "every mode.\n");
  return 0;
}
