//===- examples/quickstart.cpp - Five-minute tour of the library ----------------===//
//
// The shortest end-to-end use of the public API:
//   1. build a pipeline in the DSL (here: the Sobel filter),
//   2. run the min-cut fusion analysis (Algorithm 1 of the paper),
//   3. materialize the fused program,
//   4. execute both versions on a real image and check they agree,
//   5. estimate execution times on a simulated GPU,
//   6. emit the generated CUDA source.
//
// Run:  ./quickstart [--cuda]
//
//===----------------------------------------------------------------------===//

#include "backend/cuda/CudaEmitter.h"
#include "fusion/MinCutPartitioner.h"
#include "image/Compare.h"
#include "image/Generators.h"
#include "pipelines/Pipelines.h"
#include "sim/Executor.h"
#include "sim/Runner.h"
#include "support/CommandLine.h"
#include "transform/Fuser.h"

#include <cstdio>

using namespace kf;

int main(int Argc, char **Argv) {
  CommandLine Cl(Argc, Argv, {"cuda"});

  // 1. A pipeline: two local derivative kernels + a point magnitude
  //    kernel, on a 512x512 image.
  Program P = makeSobel(512, 512);
  std::printf("pipeline '%s': %u kernels, %u dependence edges\n",
              P.name().c_str(), P.numKernels(),
              P.buildKernelDag().numEdges());

  // 2. Fusion analysis with the paper's hardware constants.
  HardwareModel HW; // tg=400, ts=4, cALU=4, cMshared=2 by default.
  MinCutFusionResult Fusion = runMinCutFusion(P, HW);
  std::printf("fusion partition: %s  (benefit %.0f cycles/pixel)\n",
              partitionToString(P, Fusion.Blocks).c_str(),
              Fusion.TotalBenefit);

  // 3. Materialize the fused program.
  FusedProgram Fused = fuseProgram(P, Fusion.Blocks, FusionStyle::Optimized);
  std::printf("%s", fusedProgramToString(Fused).c_str());

  // 4. Execute and verify: fused output must equal the unfused baseline.
  Rng Gen(1);
  std::vector<Image> Reference = makeImagePool(P);
  Reference[0] = makeRandomImage(512, 512, 1, Gen);
  runUnfused(P, Reference);

  std::vector<Image> Pool = makeImagePool(P);
  Pool[0] = Reference[0];
  runFused(Fused, Pool);
  ImageId Out = P.terminalOutputs().front();
  std::printf("max |fused - baseline| = %g (must be 0)\n",
              maxAbsDifference(Pool[Out], Reference[Out]));

  // 5. Simulated performance on the paper's GPUs.
  CostModelParams Params;
  FusedProgram Baseline = unfusedProgram(P);
  for (const DeviceSpec &Device : DeviceSpec::paperDevices()) {
    double TBase = estimateProgramTimeMs(accountFusedProgram(Baseline),
                                         Device, Params);
    double TOpt =
        estimateProgramTimeMs(accountFusedProgram(Fused), Device, Params);
    std::printf("%-7s baseline %.3f ms, fused %.3f ms, speedup %.3f\n",
                Device.Name.c_str(), TBase, TOpt, TBase / TOpt);
  }

  // 6. Source-to-source output.
  if (Cl.hasOption("cuda"))
    std::printf("\n%s", emitCudaProgram(Fused).c_str());
  else
    std::printf("(re-run with --cuda to print the generated CUDA code)\n");
  return 0;
}
