//===- examples/custom_dsl.cpp - Building your own pipeline in the DSL ----------===//
//
// Shows the DSL surface a downstream user programs against: images,
// masks, point/local kernels with expression bodies, verification, the
// fusion pass, resource-threshold exploration (Eq. 2), and the CUDA
// output. The pipeline built here is a tone-mapped difference-of-
// Gaussians detector:
//
//     in -> blur1 (3x3) -> dog = blur1 - blur2 -> response = tanh-ish
//        -> blur2 (5x5) ---^
//
// Run:  ./custom_dsl [--cuda] [--threshold X]
//
//===----------------------------------------------------------------------===//

#include "backend/cuda/CudaEmitter.h"
#include "fusion/MinCutPartitioner.h"
#include "image/Compare.h"
#include "image/Generators.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"
#include "pipelines/Masks.h"
#include "sim/Executor.h"
#include "support/CommandLine.h"
#include "transform/Fuser.h"

#include <cstdio>

using namespace kf;

/// Difference-of-Gaussians with a soft response, built from scratch.
static Program makeDog(int Width, int Height) {
  Program P("dog");
  ExprContext &C = P.context();

  ImageId In = P.addImage("in", Width, Height);
  ImageId B1 = P.addImage("blur1_out", Width, Height);
  ImageId B2 = P.addImage("blur2_out", Width, Height);
  ImageId Dog = P.addImage("dog_out", Width, Height);
  ImageId Out = P.addImage("out", Width, Height);

  int Small = P.addMask(binomial3Normalized());
  int Large = P.addMask(boxMask(5));

  auto conv = [&](int MaskIdx) {
    return C.stencil(MaskIdx, ReduceOp::Sum,
                     C.mul(C.maskValue(), C.stencilInput(0)));
  };

  Kernel Blur1;
  Blur1.Name = "blur1";
  Blur1.Kind = OperatorKind::Local;
  Blur1.Inputs = {In};
  Blur1.Output = B1;
  Blur1.Body = conv(Small);
  Blur1.Border = BorderMode::Mirror;
  P.addKernel(std::move(Blur1));

  Kernel Blur2;
  Blur2.Name = "blur2";
  Blur2.Kind = OperatorKind::Local;
  Blur2.Inputs = {In};
  Blur2.Output = B2;
  Blur2.Body = conv(Large);
  Blur2.Border = BorderMode::Mirror;
  P.addKernel(std::move(Blur2));

  Kernel Diff;
  Diff.Name = "dog";
  Diff.Kind = OperatorKind::Point;
  Diff.Inputs = {B1, B2};
  Diff.Output = Dog;
  Diff.Body = C.sub(C.inputAt(0), C.inputAt(1));
  P.addKernel(std::move(Diff));

  // Soft response: x / (1 + |x|), a cheap sigmoid.
  Kernel Resp;
  Resp.Name = "response";
  Resp.Kind = OperatorKind::Point;
  Resp.Inputs = {Dog};
  Resp.Output = Out;
  Resp.Body = C.div(C.inputAt(0),
                    C.add(C.floatConst(1.0f),
                          C.unary(UnOp::Abs, C.inputAt(0))));
  P.addKernel(std::move(Resp));

  verifyProgramOrDie(P);
  return P;
}

int main(int Argc, char **Argv) {
  CommandLine Cl(Argc, Argv, {"cuda"});

  Program P = makeDog(256, 256);
  std::printf("%s\n", programToString(P).c_str());

  // Explore the resource threshold (Eq. 2) on a workload where it bites:
  // a chain of three cheap 3x3 convolutions on a (hypothetical) device
  // with very expensive global memory, so local-to-local fusion is
  // beneficial and only the shared-memory constraint limits its depth.
  // The fused windows grow 3x3 -> 5x5 -> 7x7 (Eq. 9), so the footprint
  // ratio of the full chain is (5+7)/3 = 4.
  {
    Program Chain("deepblur");
    ExprContext &CC = Chain.context();
    ImageId Img = Chain.addImage("in", 256, 256);
    int MaskIdx = Chain.addMask(binomial3Normalized());
    for (int Stage = 0; Stage != 3; ++Stage) {
      ImageId Next =
          Chain.addImage("s" + std::to_string(Stage), 256, 256);
      Kernel K;
      K.Name = "conv" + std::to_string(Stage);
      K.Kind = OperatorKind::Local;
      K.Inputs = {Img};
      K.Output = Next;
      K.Body = CC.stencil(MaskIdx, ReduceOp::Sum,
                          CC.mul(CC.maskValue(), CC.stencilInput(0)));
      K.Border = BorderMode::Clamp;
      Chain.addKernel(std::move(K));
      Img = Next;
    }
    verifyProgramOrDie(Chain);

    std::printf("threshold sweep on a 3-deep blur chain (slow-memory "
                "device):\n");
    for (double Threshold :
         {1.2, Cl.getDoubleOption("threshold", 2.0), 4.0}) {
      HardwareModel HW;
      HW.GlobalAccessCycles = 80000.0; // Make l2l fusion worthwhile.
      HW.SharedMemThreshold = Threshold;
      MinCutFusionResult Fusion = runMinCutFusion(Chain, HW);
      std::printf("  cMshared=%.1f -> %s\n", Threshold,
                  partitionToString(Chain, Fusion.Blocks).c_str());
    }
  }

  // Verify the default fusion end-to-end.
  HardwareModel HW;
  MinCutFusionResult Fusion = runMinCutFusion(P, HW);
  FusedProgram FP = fuseProgram(P, Fusion.Blocks, FusionStyle::Optimized);

  Rng Gen(9);
  std::vector<Image> Reference = makeImagePool(P);
  Reference[0] = makeRandomImage(256, 256, 1, Gen);
  runUnfused(P, Reference);
  std::vector<Image> Pool = makeImagePool(P);
  Pool[0] = Reference[0];
  runFused(FP, Pool);
  ImageId Out = P.terminalOutputs().front();
  std::printf("\nfused == baseline: max abs diff %g\n",
              maxAbsDifference(Pool[Out], Reference[Out]));
  std::printf("%s", fusedProgramToString(FP).c_str());

  if (Cl.hasOption("cuda"))
    std::printf("\n%s", emitCudaProgram(FP).c_str());
  return 0;
}
