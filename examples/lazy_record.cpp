//===- examples/lazy_record.cpp - Record-and-fuse frontend tour -----------------===//
//
// The lazy frontend end to end (docs/FRONTEND.md):
//   1. record an image-processing DAG imperatively through LazyImage
//      handles -- nothing executes while recording,
//   2. materialize: lower to the IR, run the full fusion + analysis
//      gate, compile a session plan, execute one frame,
//   3. re-record the same *shape* under different value names and
//      materialize again -- the structural plan cache hits warm,
//   4. feed the gate a malformed DAG (a dangling handle) and watch it
//      reject with a stable KF-* diagnostic instead of crashing.
//
// Run:  ./lazy_record
//
//===----------------------------------------------------------------------===//

#include "frontend/Lazy.h"
#include "image/Compare.h"
#include "image/Generators.h"
#include "sim/LazyRuntime.h"

#include <cstdio>

using namespace kf;

namespace {

/// Difference-of-Gaussians-style sharpening, recorded lazily: blur with
/// a binomial window, subtract, amplify, add back.
LazyImage recordUnsharp(LazyPipeline &LP, int Size, const char *InputName,
                        float Amount) {
  const float S = 1.0f / 16.0f;
  int Binom = LP.addMask(3, 3,
                         {1 * S, 2 * S, 1 * S, 2 * S, 4 * S, 2 * S, 1 * S,
                          2 * S, 1 * S});
  LazyImage In = LP.input(InputName, Size, Size);
  LazyImage Blur = LP.convolve(In, Binom);
  LazyImage Detail = LP.sub(In, Blur);
  LazyImage Boost = LP.binary(BinOp::Mul, Amount, Detail);
  return LP.add(In, Boost);
}

} // namespace

int main() {
  const int Size = 256;
  Rng Gen(7);
  Image Frame = makeRandomImage(Size, Size, 1, Gen, 0.05f, 1.0f);

  // 1+2. Record and materialize. The frame executes fused: the blur,
  // subtract, scale, and add collapse into few launches.
  LazyPipeline First("unsharp");
  LazyImage Sharp = recordUnsharp(First, Size, "photo", 1.5f);
  std::printf("recorded %zu ops; nothing has executed yet\n",
              First.numOps());

  PlanCache Cache;
  MaterializedPipeline MP = compileLazy(First, {Sharp});
  if (!MP.Ok) {
    std::fprintf(stderr, "gate rejected:\n%s", MP.Diags.renderText().c_str());
    return 1;
  }
  std::printf("gate passed: %zu live kernels in %zu fused launches "
              "(shape hash %016llx)\n",
              MP.Prog->kernels().size(), MP.Fused.Kernels.size(),
              static_cast<unsigned long long>(MP.StructuralHash));

  LazyRunResult Cold = runLazy(MP, {{"photo", &Frame}}, ExecutionOptions(),
                               &Cache);
  if (!Cold.Ok) {
    std::fprintf(stderr, "%s", Cold.Diags.renderText().c_str());
    return 1;
  }
  std::printf("cold run: plan %s, compile %.3f ms, exec %.3f ms\n",
              Cold.Stats.PlanWasHit ? "hit" : "miss", Cold.Stats.CompileMs,
              Cold.Stats.ExecMs);

  // 3. A second client builds the same shape with its own names. The
  // canonical-naming lowering keys the plan cache on DAG shape, so this
  // tenant skips plan compilation entirely.
  LazyPipeline Second("other_tenant");
  LazyImage Sharp2 = recordUnsharp(Second, Size, "sensor_frame", 1.5f);
  MaterializedPipeline MP2 = compileLazy(Second, {Sharp2});
  LazyRunResult Warm = runLazy(MP2, {{"sensor_frame", &Frame}},
                               ExecutionOptions(), &Cache);
  std::printf("second tenant, same shape: plan %s (hash %s)\n",
              Warm.Stats.PlanWasHit ? "hit -- compiled nothing" : "miss",
              MP2.StructuralHash == MP.StructuralHash ? "equal" : "differs");
  std::printf("max |tenant1 - tenant2| = %g (must be 0)\n",
              maxAbsDifference(Cold.Outputs.front(), Warm.Outputs.front()));

  // 4. Malformed DAGs reject with diagnostics, never a crash: a handle
  // from one pipeline used in another is dangling.
  LazyPipeline Broken("broken");
  LazyImage Foreign = First.handleAt(0); // belongs to 'unsharp'
  LazyImage Bad = Broken.add(Broken.input("x", Size, Size), Foreign);
  MaterializedPipeline Rejected = compileLazy(Broken, {Bad});
  std::printf("malformed DAG rejected (ok=%d):\n%s",
              Rejected.Ok ? 1 : 0, Rejected.Diags.renderText().c_str());
  return Rejected.Ok ? 1 : 0;
}
